// Gossip-under-loss lives in an external test package because it uses
// the chaos harness, which itself imports network.
package network_test

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"repro/internal/chaos"
	"repro/internal/network"
	"repro/internal/resilience"
)

// TestGossipConvergesUnderSustainedLoss drives anti-entropy through a
// 30%-lossy link: with retries on each push, the group must still
// reach full convergence, and the push stats must show the loss was
// real and the retries did the recovering.
func TestGossipConvergesUnderSustainedLoss(t *testing.T) {
	const nodes = 12
	g := network.NewGossip(rand.New(rand.NewSource(5)), 2)
	for i := 0; i < nodes; i++ {
		g.Join(fmt.Sprintf("n%02d", i))
	}
	g.SetLink(chaos.LossyLink(rand.New(rand.NewSource(6)), 0.3))
	g.SetRetry(resilience.Retry{MaxAttempts: 4, Sleep: func(time.Duration) {}})

	seed, _ := g.Store("n00")
	for i := 0; i < 5; i++ {
		seed.Put(network.Item{Key: fmt.Sprintf("policy-%d", i), Version: 1, Payload: i})
	}

	rounds := g.RunUntilConverged(100)
	if !g.Converged() {
		t.Fatalf("not converged after %d rounds under 30%% loss", rounds)
	}
	for i := 0; i < nodes; i++ {
		s, _ := g.Store(fmt.Sprintf("n%02d", i))
		if s.Len() != 5 {
			t.Errorf("node %d holds %d items, want 5", i, s.Len())
		}
	}
	dropped, retried := g.PushStats()
	if dropped == 0 {
		t.Error("no pushes dropped — the lossy link was inert")
	}
	if retried == 0 {
		t.Error("no retries spent — the retry policy was inert")
	}
	t.Logf("converged in %d rounds; %d pushes dropped, %d retries", rounds, dropped, retried)
}

// TestGossipStalledByLossWithoutRetry is the control: the same loss
// rate with no retry policy still converges eventually (anti-entropy
// is self-healing) but drops strictly more pushes per round, with no
// retries spent.
func TestGossipStalledByLossWithoutRetry(t *testing.T) {
	g := network.NewGossip(rand.New(rand.NewSource(5)), 2)
	for i := 0; i < 12; i++ {
		g.Join(fmt.Sprintf("n%02d", i))
	}
	g.SetLink(chaos.LossyLink(rand.New(rand.NewSource(6)), 0.3))
	seed, _ := g.Store("n00")
	seed.Put(network.Item{Key: "policy", Version: 1})

	g.RunUntilConverged(200)
	if !g.Converged() {
		t.Fatal("anti-entropy without retries should still converge eventually")
	}
	dropped, retried := g.PushStats()
	if dropped == 0 {
		t.Error("no pushes dropped")
	}
	if retried != 0 {
		t.Errorf("retried = %d without a retry policy", retried)
	}
}
