package network

import (
	"fmt"
	"sort"
	"sync"
)

// DeviceInfo is the advertisement a device publishes on discovery —
// the raw material the generative policy architecture consumes
// (Section IV: devices "discover other devices in the system and
// decide on the policies to be used in their interaction with those
// devices").
type DeviceInfo struct {
	ID           string
	Type         string
	Organization string
	// Attrs carries the advertised numeric attributes (capabilities,
	// capacities).
	Attrs map[string]float64
}

// Watcher is notified of announcements and departures.
type Watcher interface {
	// Announced fires when a device joins or updates its advertisement.
	Announced(DeviceInfo)
	// Departed fires when a device leaves.
	Departed(id string)
}

// WatcherFuncs adapts functions into a Watcher; nil fields are
// skipped.
type WatcherFuncs struct {
	OnAnnounced func(DeviceInfo)
	OnDeparted  func(string)
}

var _ Watcher = WatcherFuncs{}

// Announced invokes OnAnnounced.
func (w WatcherFuncs) Announced(info DeviceInfo) {
	if w.OnAnnounced != nil {
		w.OnAnnounced(info)
	}
}

// Departed invokes OnDeparted.
func (w WatcherFuncs) Departed(id string) {
	if w.OnDeparted != nil {
		w.OnDeparted(id)
	}
}

// Registry tracks the advertised membership of the collective and
// notifies watchers of changes. It is safe for concurrent use.
type Registry struct {
	mu       sync.Mutex
	devices  map[string]DeviceInfo
	watchers []Watcher
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{devices: make(map[string]DeviceInfo)}
}

// Presize grows the device table to hold n entries without incremental
// rehashing — call it before announcing a fleet of known size.
func (r *Registry) Presize(n int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if n <= len(r.devices) {
		return
	}
	devices := make(map[string]DeviceInfo, n)
	for k, v := range r.devices {
		devices[k] = v
	}
	r.devices = devices
}

// Watch registers a watcher for subsequent announcements.
func (r *Registry) Watch(w Watcher) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if w != nil {
		r.watchers = append(r.watchers, w)
	}
}

// Announce publishes (or updates) a device advertisement and notifies
// watchers.
func (r *Registry) Announce(info DeviceInfo) error {
	if info.ID == "" {
		return fmt.Errorf("network: announcement needs a device ID")
	}
	r.mu.Lock()
	copied := info
	if len(info.Attrs) > 0 {
		copied.Attrs = make(map[string]float64, len(info.Attrs))
		for k, v := range info.Attrs {
			copied.Attrs[k] = v
		}
	}
	r.devices[info.ID] = copied
	watchers := append([]Watcher(nil), r.watchers...)
	r.mu.Unlock()

	for _, w := range watchers {
		w.Announced(copied)
	}
	return nil
}

// Depart removes a device and notifies watchers. It reports whether
// the device was present.
func (r *Registry) Depart(id string) bool {
	r.mu.Lock()
	_, ok := r.devices[id]
	delete(r.devices, id)
	watchers := append([]Watcher(nil), r.watchers...)
	r.mu.Unlock()

	if ok {
		for _, w := range watchers {
			w.Departed(id)
		}
	}
	return ok
}

// Get returns the advertisement for a device.
func (r *Registry) Get(id string) (DeviceInfo, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	info, ok := r.devices[id]
	return info, ok
}

// ByType returns advertisements of the given type, sorted by ID.
func (r *Registry) ByType(deviceType string) []DeviceInfo {
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []DeviceInfo
	for _, info := range r.devices {
		if info.Type == deviceType {
			out = append(out, info)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// All returns every advertisement, sorted by ID.
func (r *Registry) All() []DeviceInfo {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]DeviceInfo, 0, len(r.devices))
	for _, info := range r.devices {
		out = append(out, info)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Len returns the number of advertised devices.
func (r *Registry) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.devices)
}
