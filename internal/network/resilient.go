package network

import (
	"errors"

	"repro/internal/resilience"
	"repro/internal/sim"
)

// ReliableSender wraps Bus.Send with a retry policy and per-peer
// circuit breakers, turning the bus's loss and partition faults from
// silent failures into bounded, observable recovery work. Transient
// errors (ErrDropped) are retried; permanent ones (ErrUnknownNode —
// the receiver crashed or never existed) fail fast and feed the
// peer's breaker, which then spares the retry budget until the peer
// comes back.
type ReliableSender struct {
	// Bus is the underlying transport (required).
	Bus *Bus
	// Retry bounds redelivery attempts; the zero value retries three
	// times immediately.
	Retry resilience.Retry
	// Breakers holds the per-peer circuit breakers; nil disables
	// breaking.
	Breakers *resilience.BreakerSet
	// Metrics observes retries and breaker rejections
	// (resilience.retries, resilience.breaker_rejected, and
	// resilience.sends labeled by result); may be nil.
	Metrics *sim.Metrics
}

// Send delivers the message with retries, gated by the receiver's
// circuit breaker. It returns resilience.ErrOpen when the breaker
// rejects the call outright.
func (s *ReliableSender) Send(msg Message) error {
	var breaker *resilience.Breaker
	if s.Breakers != nil {
		breaker = s.Breakers.For(msg.To)
		if !breaker.Allow() {
			s.count("resilience.breaker_rejected")
			return resilience.ErrOpen
		}
	}
	retry := s.Retry
	if retry.Retryable == nil {
		retry.Retryable = func(err error) bool { return errors.Is(err, ErrDropped) }
	}
	prevOnRetry := retry.OnRetry
	retry.OnRetry = func(attempt int, err error) {
		s.count("resilience.retries")
		if prevOnRetry != nil {
			prevOnRetry(attempt, err)
		}
	}
	err := retry.Do(func() error { return s.Bus.Send(msg) })
	if breaker != nil {
		breaker.Record(err)
	}
	if err != nil {
		s.countResult("failed")
		return err
	}
	s.countResult("ok")
	return nil
}

func (s *ReliableSender) count(name string) {
	if s.Metrics != nil {
		s.Metrics.Inc(name, 1)
	}
}

func (s *ReliableSender) countResult(result string) {
	if s.Metrics == nil {
		return
	}
	if reg := s.Metrics.Registry(); reg != nil {
		reg.Counter("resilience.sends", "result", result).Inc()
	}
}
