// Package network provides the collective's communication substrate:
// an in-memory message bus with configurable latency, loss and
// partitions; a device registry with discovery notifications (the
// trigger for generative policy creation); and an anti-entropy gossip
// protocol for sharing policies and learned intelligence between
// devices ("enabling devices to share the intelligence they learn",
// Section I).
package network

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"

	"repro/internal/sim"
	"repro/internal/telemetry"
)

// Common bus errors.
var (
	// ErrUnknownNode is returned when sending to a node that is not
	// attached.
	ErrUnknownNode = errors.New("network: unknown node")
	// ErrDropped is returned when the message was lost or blocked by a
	// partition.
	ErrDropped = errors.New("network: message dropped")
)

// Message is one unit of communication between devices.
type Message struct {
	From    string
	To      string
	Topic   string
	Payload any
}

// Handler consumes delivered messages.
type Handler func(Message)

// LaneHandler consumes delivered messages together with the delivery
// event's engine lane, so ordered side effects (audit appends, future
// schedules) stay deterministic when the engine runs in parallel. The
// lane is nil for synchronous (engine-less) deliveries; sim.Lane's
// methods treat a nil lane as direct, so one handler serves both modes.
type LaneHandler func(Message, *sim.Lane)

// endpoint is one attached node: exactly one of the two handler forms
// is set. Plain handlers are delivered as serial barrier events; lane
// handlers are delivered as events sharded by recipient ID, so an
// engine running in parallel may deliver to different recipients
// concurrently while each recipient's deliveries stay ordered.
type endpoint struct {
	h  Handler
	lh LaneHandler
}

// call invokes the endpoint synchronously.
func (ep endpoint) call(msg Message, lane *sim.Lane) {
	if ep.lh != nil {
		ep.lh(msg, lane)
		return
	}
	ep.h(msg)
}

// Bus is an in-memory message bus. Delivery is synchronous when no
// engine is attached, or scheduled with uniform random latency when
// one is. Loss probability and partitions model degraded coalition
// networks. All methods are safe for concurrent use.
type Bus struct {
	mu         sync.Mutex
	rng        *rand.Rand
	engine     *sim.Engine
	metrics    *sim.Metrics
	cDelivered *telemetry.Counter
	cDropLoss  *telemetry.Counter
	cDropPart  *telemetry.Counter
	cDup       *telemetry.Counter
	nodes      map[string]endpoint
	partition  map[string]int
	lossProb   float64
	dupProb    float64
	minLatency time.Duration
	maxLatency time.Duration
	delivered  int
	dropped    int
	duplicated int
}

// BusOption configures a Bus.
type BusOption interface {
	apply(*Bus)
}

type busOptionFunc func(*Bus)

func (f busOptionFunc) apply(b *Bus) { f(b) }

// WithEngine schedules deliveries on the simulation engine with the
// configured latency instead of delivering synchronously.
func WithEngine(e *sim.Engine) BusOption {
	return busOptionFunc(func(b *Bus) { b.engine = e })
}

// WithLatency sets the uniform delivery latency range (requires an
// engine to take effect).
func WithLatency(min, max time.Duration) BusOption {
	return busOptionFunc(func(b *Bus) {
		if min < 0 {
			min = 0
		}
		if max < min {
			max = min
		}
		b.minLatency, b.maxLatency = min, max
	})
}

// WithLoss sets the probability a message is silently lost.
func WithLoss(p float64) BusOption {
	return busOptionFunc(func(b *Bus) { b.lossProb = clamp01(p) })
}

// WithDuplication sets the probability a delivered message is
// delivered a second time (with independent latency, so duplicates
// also reorder).
func WithDuplication(p float64) BusOption {
	return busOptionFunc(func(b *Bus) { b.dupProb = clamp01(p) })
}

// WithMetrics mirrors the bus's delivery accounting into a metrics
// registry (bus.delivered, bus.dropped labeled by cause, and
// bus.duplicated), making the fault model observable by experiments.
func WithMetrics(m *sim.Metrics) BusOption {
	return busOptionFunc(func(b *Bus) {
		b.metrics = m
		if reg := m.Registry(); reg != nil {
			b.cDelivered = reg.Counter("bus.delivered")
			b.cDropLoss = reg.Counter("bus.dropped", "cause", "loss")
			b.cDropPart = reg.Counter("bus.dropped", "cause", "partition")
			b.cDup = reg.Counter("bus.duplicated")
		}
	})
}

func clamp01(p float64) float64 {
	if p < 0 {
		return 0
	}
	if p > 1 {
		return 1
	}
	return p
}

// NewBus builds a bus. The random source drives loss and latency
// sampling and must be non-nil when either is configured.
func NewBus(rng *rand.Rand, opts ...BusOption) *Bus {
	b := &Bus{
		rng:       rng,
		nodes:     make(map[string]endpoint),
		partition: make(map[string]int),
	}
	for _, o := range opts {
		o.apply(b)
	}
	return b
}

// Attach registers a node's handler under its ID. Deliveries to plain
// handlers are scheduled as serial barrier events; use AttachLane when
// the handler is shard-safe (touches only the recipient's own state).
func (b *Bus) Attach(id string, h Handler) error {
	if h == nil {
		return errors.New("network: attach requires an id and handler")
	}
	return b.attach(id, endpoint{h: h})
}

// AttachLane registers a shard-safe handler: deliveries are scheduled
// as engine events sharded by recipient ID, so a parallel engine may
// run deliveries to different recipients concurrently. The handler must
// confine mutable state to the recipient (plus commutative telemetry)
// and route audit appends and re-schedules through the lane.
func (b *Bus) AttachLane(id string, h LaneHandler) error {
	if h == nil {
		return errors.New("network: attach requires an id and handler")
	}
	return b.attach(id, endpoint{lh: h})
}

func (b *Bus) attach(id string, ep endpoint) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if id == "" {
		return errors.New("network: attach requires an id and handler")
	}
	if _, dup := b.nodes[id]; dup {
		return fmt.Errorf("network: node %q already attached", id)
	}
	b.nodes[id] = ep
	return nil
}

// Detach removes a node and reports whether it was attached.
func (b *Bus) Detach(id string) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	_, ok := b.nodes[id]
	delete(b.nodes, id)
	delete(b.partition, id)
	return ok
}

// Nodes returns the attached node IDs, sorted.
func (b *Bus) Nodes() []string {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make([]string, 0, len(b.nodes))
	for id := range b.nodes {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Partition assigns nodes to partition groups; nodes in different
// groups cannot exchange messages. Unlisted nodes stay in group 0.
func (b *Bus) Partition(groups map[string]int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.partition = make(map[string]int, len(groups))
	for id, g := range groups {
		b.partition[id] = g
	}
}

// Heal removes all partitions.
func (b *Bus) Heal() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.partition = make(map[string]int)
}

// SetLoss changes the loss probability at runtime (fault injection).
func (b *Bus) SetLoss(p float64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.lossProb = clamp01(p)
}

// SetDuplication changes the duplication probability at runtime.
func (b *Bus) SetDuplication(p float64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.dupProb = clamp01(p)
}

// SetLatency changes the delivery latency range at runtime (slow-link
// fault injection; requires an engine to take effect).
func (b *Bus) SetLatency(min, max time.Duration) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if min < 0 {
		min = 0
	}
	if max < min {
		max = min
	}
	b.minLatency, b.maxLatency = min, max
}

// Send delivers a message to msg.To. It returns ErrUnknownNode for
// unattached receivers and ErrDropped for losses and partition blocks.
// With an engine attached, delivery is asynchronous and Send reports
// only send-time failures.
//
// Determinism note: loss, duplication and latency are sampled from the
// bus rng at Send time, so the sampling order — and therefore the fault
// pattern — is reproducible only when Sends happen serially (from
// barrier events or between runs). Sends from concurrent sharded
// callbacks are race-safe but draw from the rng in worker order; keep
// the bus fault-free with fixed latency if such a run must be
// deterministic.
func (b *Bus) Send(msg Message) error {
	b.mu.Lock()
	ep, ok := b.nodes[msg.To]
	if !ok {
		b.mu.Unlock()
		return fmt.Errorf("%w: %q", ErrUnknownNode, msg.To)
	}
	if b.partition[msg.From] != b.partition[msg.To] {
		b.dropped++
		b.cDropPart.Inc()
		b.mu.Unlock()
		return fmt.Errorf("%w: partition between %q and %q", ErrDropped, msg.From, msg.To)
	}
	if b.lossProb > 0 && b.rng != nil && b.rng.Float64() < b.lossProb {
		b.dropped++
		b.cDropLoss.Inc()
		b.mu.Unlock()
		return fmt.Errorf("%w: loss", ErrDropped)
	}
	engine := b.engine
	latency := b.sampleLatencyLocked()
	duplicate := b.dupProb > 0 && b.rng != nil && b.rng.Float64() < b.dupProb
	var dupLatency time.Duration
	if duplicate {
		// An independent latency sample makes duplicates arrive out of
		// order relative to the original.
		dupLatency = b.sampleLatencyLocked()
		b.duplicated++
		b.cDup.Inc()
	}
	b.delivered++
	b.cDelivered.Inc()
	b.mu.Unlock()

	if engine == nil {
		ep.call(msg, nil)
		if duplicate {
			ep.call(msg, nil)
		}
		return nil
	}
	scheduleDelivery(engine, latency, ep, msg)
	if duplicate {
		scheduleDelivery(engine, dupLatency, ep, msg)
	}
	return nil
}

// scheduleDelivery queues one delivery on the engine: sharded by
// recipient for lane handlers, as a serial barrier for plain ones.
func scheduleDelivery(engine *sim.Engine, latency time.Duration, ep endpoint, msg Message) {
	if ep.lh != nil {
		engine.ScheduleShard(latency, msg.To, func(lane *sim.Lane) { ep.lh(msg, lane) })
		return
	}
	engine.Schedule(latency, func() { ep.h(msg) })
}

// Broadcast sends the payload to every attached node except the
// sender. It returns the number of successful (or scheduled)
// deliveries.
func (b *Bus) Broadcast(from, topic string, payload any) int {
	n := 0
	for _, id := range b.Nodes() {
		if id == from {
			continue
		}
		if err := b.Send(Message{From: from, To: id, Topic: topic, Payload: payload}); err == nil {
			n++
		}
	}
	return n
}

// Stats returns the delivered and dropped message counts. Every Send
// to an attached, same-partition-checked receiver counts exactly once
// as delivered or dropped, so delivered+dropped equals attempted sends
// (duplicates are tracked separately by Duplicated).
func (b *Bus) Stats() (delivered, dropped int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.delivered, b.dropped
}

// Duplicated returns how many messages were delivered twice by the
// duplication fault.
func (b *Bus) Duplicated() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.duplicated
}

func (b *Bus) sampleLatencyLocked() time.Duration {
	if b.maxLatency <= b.minLatency || b.rng == nil {
		return b.minLatency
	}
	span := b.maxLatency - b.minLatency
	return b.minLatency + time.Duration(b.rng.Int63n(int64(span)+1))
}
