// Package network provides the collective's communication substrate:
// an in-memory message bus with configurable latency, loss and
// partitions; a device registry with discovery notifications (the
// trigger for generative policy creation); and an anti-entropy gossip
// protocol for sharing policies and learned intelligence between
// devices ("enabling devices to share the intelligence they learn",
// Section I).
package network

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"

	"repro/internal/admission"
	"repro/internal/sim"
	"repro/internal/telemetry"
)

// Common bus errors.
var (
	// ErrUnknownNode is returned when sending to a node that is not
	// attached.
	ErrUnknownNode = errors.New("network: unknown node")
	// ErrDropped is returned when the message was lost or blocked by a
	// partition.
	ErrDropped = errors.New("network: message dropped")
)

// Message is one unit of communication between devices.
type Message struct {
	From    string
	To      string
	Topic   string
	Payload any
}

// Handler consumes delivered messages.
type Handler func(Message)

// LaneHandler consumes delivered messages together with the delivery
// event's engine lane, so ordered side effects (audit appends, future
// schedules) stay deterministic when the engine runs in parallel. The
// lane is nil for synchronous (engine-less) deliveries; sim.Lane's
// methods treat a nil lane as direct, so one handler serves both modes.
type LaneHandler func(Message, *sim.Lane)

// endpoint is one attached node: exactly one of the two handler forms
// is set. Plain handlers are delivered as serial barrier events; lane
// handlers are delivered as events sharded by recipient ID, so an
// engine running in parallel may deliver to different recipients
// concurrently while each recipient's deliveries stay ordered.
type endpoint struct {
	h  Handler
	lh LaneHandler
}

// call invokes the endpoint synchronously.
func (ep endpoint) call(msg Message, lane *sim.Lane) {
	if ep.lh != nil {
		ep.lh(msg, lane)
		return
	}
	ep.h(msg)
}

// Bus is an in-memory message bus. Delivery is synchronous when no
// engine is attached, or scheduled with uniform random latency when
// one is. Loss probability and partitions model degraded coalition
// networks. All methods are safe for concurrent use.
type Bus struct {
	mu         sync.Mutex
	rng        *rand.Rand
	engine     *sim.Engine
	metrics    *sim.Metrics
	intake     *admission.Controller
	cSent       *telemetry.Counter
	cDelivered  *telemetry.Counter
	cDropLoss   *telemetry.Counter
	cDropPart   *telemetry.Counter
	cDropOneWay *telemetry.Counter
	cDup        *telemetry.Counter
	nodes      map[string]endpoint
	partition  map[string]int
	oneWay     map[string]map[string]bool
	lossProb   float64
	dupProb    float64
	minLatency time.Duration
	maxLatency time.Duration
	sent       int
	delivered  int
	dropped    int
	shed       int
	pending    int
	duplicated int
	bridgeDrop int
}

// BusOption configures a Bus.
type BusOption interface {
	apply(*Bus)
}

type busOptionFunc func(*Bus)

func (f busOptionFunc) apply(b *Bus) { f(b) }

// WithEngine schedules deliveries on the simulation engine with the
// configured latency instead of delivering synchronously.
func WithEngine(e *sim.Engine) BusOption {
	return busOptionFunc(func(b *Bus) { b.engine = e })
}

// WithLatency sets the uniform delivery latency range (requires an
// engine to take effect).
func WithLatency(min, max time.Duration) BusOption {
	return busOptionFunc(func(b *Bus) {
		if min < 0 {
			min = 0
		}
		if max < min {
			max = min
		}
		b.minLatency, b.maxLatency = min, max
	})
}

// WithLoss sets the probability a message is silently lost.
func WithLoss(p float64) BusOption {
	return busOptionFunc(func(b *Bus) { b.lossProb = clamp01(p) })
}

// WithDuplication sets the probability a delivered message is
// delivered a second time (with independent latency, so duplicates
// also reorder).
func WithDuplication(p float64) BusOption {
	return busOptionFunc(func(b *Bus) { b.dupProb = clamp01(p) })
}

// WithMetrics mirrors the bus's delivery accounting into a metrics
// registry (bus.sent, bus.delivered, bus.dropped labeled by cause, and
// bus.duplicated), making the fault model observable by experiments.
func WithMetrics(m *sim.Metrics) BusOption {
	return busOptionFunc(func(b *Bus) {
		b.metrics = m
		if reg := m.Registry(); reg != nil {
			b.cSent = reg.Counter("bus.sent")
			b.cDelivered = reg.Counter("bus.delivered")
			b.cDropLoss = reg.Counter("bus.dropped", "cause", "loss")
			b.cDropPart = reg.Counter("bus.dropped", "cause", "partition")
			b.cDropOneWay = reg.Counter("bus.dropped", "cause", "oneway")
			b.cDup = reg.Counter("bus.duplicated")
		}
	})
}

// WithAdmission puts an admission controller in front of delivery:
// every Send that passes the fault model is classified by topic and
// either admitted into the recipient's bounded intake queue or shed
// with a typed cause (admission.ErrQueueFull,
// admission.ErrRateLimited). With an engine attached, queues drain in
// batches on engine events sharded by recipient, so a fixed seed
// yields identical delivery sequences at any parallelism; without an
// engine, admitted messages drain synchronously.
func WithAdmission(ctrl *admission.Controller) BusOption {
	return busOptionFunc(func(b *Bus) {
		b.intake = ctrl
		// A queued original displaced by a higher-priority arrival
		// must leave the bus's books as a shed, not vanish: the
		// controller already counted it (admission.shed, cause
		// queue_full), the hook keeps sent == delivered + dropped +
		// shed + pending exact. Evicted duplicates touch nothing —
		// they were never counted.
		ctrl.SetOnEvict(func(_ string, it admission.Item) {
			am, ok := it.Payload.(admittedMsg)
			if !ok || am.dup {
				return
			}
			b.mu.Lock()
			b.pending--
			b.shed++
			b.mu.Unlock()
		})
	})
}

func clamp01(p float64) float64 {
	if p < 0 {
		return 0
	}
	if p > 1 {
		return 1
	}
	return p
}

// NewBus builds a bus. The random source drives loss, duplication and
// latency sampling; when faults are configured with a nil rng the bus
// defaults to a fixed-seed source at configuration time, so a chaos
// schedule can never be a silent no-op.
func NewBus(rng *rand.Rand, opts ...BusOption) *Bus {
	b := &Bus{
		rng:       rng,
		nodes:     make(map[string]endpoint),
		partition: make(map[string]int),
	}
	for _, o := range opts {
		o.apply(b)
	}
	b.ensureRNGLocked()
	return b
}

// Presize grows the endpoint table to hold n lanes without incremental
// rehashing — call it before attaching a fleet of known size. It is a
// hint, not a limit, and is cheapest on a still-empty bus.
func (b *Bus) Presize(n int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if n <= len(b.nodes) {
		return
	}
	nodes := make(map[string]endpoint, n)
	for k, v := range b.nodes {
		nodes[k] = v
	}
	b.nodes = nodes
}

// ensureRNGLocked guarantees a random source exists whenever loss,
// duplication or a latency spread is configured. Sampling guards used
// to skip fault injection silently when the rng was nil; defaulting
// the source (fixed seed, reproducible) at every configuration point
// makes that state unrepresentable.
func (b *Bus) ensureRNGLocked() {
	if b.rng == nil && (b.lossProb > 0 || b.dupProb > 0 || b.maxLatency > b.minLatency) {
		b.rng = rand.New(rand.NewSource(1))
	}
}

// Attach registers a node's handler under its ID. Deliveries to plain
// handlers are scheduled as serial barrier events; use AttachLane when
// the handler is shard-safe (touches only the recipient's own state).
func (b *Bus) Attach(id string, h Handler) error {
	if h == nil {
		return errors.New("network: attach requires an id and handler")
	}
	return b.attach(id, endpoint{h: h})
}

// AttachLane registers a shard-safe handler: deliveries are scheduled
// as engine events sharded by recipient ID, so a parallel engine may
// run deliveries to different recipients concurrently. The handler must
// confine mutable state to the recipient (plus commutative telemetry)
// and route audit appends and re-schedules through the lane.
func (b *Bus) AttachLane(id string, h LaneHandler) error {
	if h == nil {
		return errors.New("network: attach requires an id and handler")
	}
	return b.attach(id, endpoint{lh: h})
}

func (b *Bus) attach(id string, ep endpoint) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if id == "" {
		return errors.New("network: attach requires an id and handler")
	}
	if _, dup := b.nodes[id]; dup {
		return fmt.Errorf("network: node %q already attached", id)
	}
	b.nodes[id] = ep
	return nil
}

// Detach removes a node and reports whether it was attached.
func (b *Bus) Detach(id string) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	_, ok := b.nodes[id]
	delete(b.nodes, id)
	delete(b.partition, id)
	return ok
}

// Nodes returns the attached node IDs, sorted.
func (b *Bus) Nodes() []string {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make([]string, 0, len(b.nodes))
	for id := range b.nodes {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Partition assigns nodes to partition groups; nodes in different
// groups cannot exchange messages. Unlisted nodes stay in group 0.
func (b *Bus) Partition(groups map[string]int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.partition = make(map[string]int, len(groups))
	for id, g := range groups {
		b.partition[id] = g
	}
}

// Heal removes all partitions, symmetric and one-way.
func (b *Bus) Heal() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.partition = make(map[string]int)
	b.oneWay = nil
}

// PartitionOneWay blocks messages from any node in from to any node in
// to — but not the reverse direction. This is the asymmetric-partition
// fault: a push can arrive while its acknowledgement is lost (or vice
// versa), the failure mode anti-entropy repair exists for. Calls
// accumulate; HealOneWay or Heal clears them. Blocked sends are
// dropped with cause "oneway" on the bus's books.
func (b *Bus) PartitionOneWay(from, to []string) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.oneWay == nil {
		b.oneWay = make(map[string]map[string]bool)
	}
	for _, f := range from {
		blocked := b.oneWay[f]
		if blocked == nil {
			blocked = make(map[string]bool, len(to))
			b.oneWay[f] = blocked
		}
		for _, t := range to {
			blocked[t] = true
		}
	}
}

// HealOneWay removes every one-way block, leaving symmetric
// partitions in place.
func (b *Bus) HealOneWay() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.oneWay = nil
}

// SetLoss changes the loss probability at runtime (fault injection).
// A bus built without a random source gets a fixed-seed one here, so
// the injected fault always takes effect.
func (b *Bus) SetLoss(p float64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.lossProb = clamp01(p)
	b.ensureRNGLocked()
}

// SetDuplication changes the duplication probability at runtime, with
// the same rng-defaulting guarantee as SetLoss.
func (b *Bus) SetDuplication(p float64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.dupProb = clamp01(p)
	b.ensureRNGLocked()
}

// SetLatency changes the delivery latency range at runtime (slow-link
// fault injection; requires an engine to take effect).
func (b *Bus) SetLatency(min, max time.Duration) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if min < 0 {
		min = 0
	}
	if max < min {
		max = min
	}
	b.minLatency, b.maxLatency = min, max
	b.ensureRNGLocked()
}

// Send delivers a message to msg.To. It returns ErrUnknownNode for
// unattached receivers and ErrDropped for losses and partition blocks.
// With an engine attached, delivery is asynchronous and Send reports
// only send-time failures.
//
// Determinism note: loss, duplication and latency are sampled from the
// bus rng at Send time, so the sampling order — and therefore the fault
// pattern — is reproducible only when Sends happen serially (from
// barrier events or between runs). Sends from concurrent sharded
// callbacks are race-safe but draw from the rng in worker order; keep
// the bus fault-free with fixed latency if such a run must be
// deterministic.
func (b *Bus) Send(msg Message) error {
	b.mu.Lock()
	ep, ok := b.nodes[msg.To]
	if !ok {
		b.mu.Unlock()
		return fmt.Errorf("%w: %q", ErrUnknownNode, msg.To)
	}
	b.sent++
	b.cSent.Inc()
	if b.partition[msg.From] != b.partition[msg.To] {
		b.dropped++
		b.cDropPart.Inc()
		b.mu.Unlock()
		return fmt.Errorf("%w: partition between %q and %q", ErrDropped, msg.From, msg.To)
	}
	if b.oneWay != nil && b.oneWay[msg.From][msg.To] {
		b.dropped++
		b.cDropOneWay.Inc()
		b.mu.Unlock()
		return fmt.Errorf("%w: one-way partition %q -> %q", ErrDropped, msg.From, msg.To)
	}
	if b.lossProb > 0 && b.rng != nil && b.rng.Float64() < b.lossProb {
		b.dropped++
		b.cDropLoss.Inc()
		b.mu.Unlock()
		return fmt.Errorf("%w: loss", ErrDropped)
	}
	engine := b.engine
	intake := b.intake
	latency := b.sampleLatencyLocked()
	duplicate := b.dupProb > 0 && b.rng != nil && b.rng.Float64() < b.dupProb
	var dupLatency time.Duration
	if duplicate && intake == nil {
		// An independent latency sample makes duplicates arrive out of
		// order relative to the original.
		dupLatency = b.sampleLatencyLocked()
		b.duplicated++
		b.cDup.Inc()
	}
	if intake != nil {
		b.mu.Unlock()
		return b.sendAdmitted(msg, ep, engine, intake, latency, duplicate)
	}
	b.delivered++
	b.cDelivered.Inc()
	b.mu.Unlock()

	if engine == nil {
		ep.call(msg, nil)
		if duplicate {
			ep.call(msg, nil)
		}
		return nil
	}
	scheduleDelivery(engine, latency, ep, msg)
	if duplicate {
		scheduleDelivery(engine, dupLatency, ep, msg)
	}
	return nil
}

// admittedMsg is one bus message queued behind the admission
// controller; dup marks the extra copy injected by the duplication
// fault (delivered, but not counted as a delivered original).
type admittedMsg struct {
	msg Message
	dup bool
}

// sendAdmitted runs the admission-controlled tail of Send: the message
// is classified by topic and admitted or shed; admitted messages drain
// to the endpoint in priority order — synchronously without an engine,
// in batched drain events sharded by recipient with one.
func (b *Bus) sendAdmitted(msg Message, ep endpoint, engine *sim.Engine,
	intake *admission.Controller, latency time.Duration, duplicate bool) error {
	// Classify by string switch, not by interned ID: the admission
	// package's BenchmarkClassifyTopic* shows an intern lookup per
	// message (~40ns) costs more than comparing short topic strings
	// directly (~6ns). Interned IDs pay off where they are held and
	// reused — dense fleet indices, not one-shot classification.
	class := admission.ClassifyTopic(msg.Topic)
	if err := intake.Admit(msg.To, class, admittedMsg{msg: msg}); err != nil {
		b.mu.Lock()
		b.shed++
		b.mu.Unlock()
		return err
	}
	b.mu.Lock()
	b.pending++
	b.mu.Unlock()
	if duplicate {
		// The duplicate is a second admission attempt: under pressure
		// it sheds like any other arrival instead of bypassing the
		// bound. It stays off the conservation books — it counts as
		// duplicated only if it actually reaches the recipient.
		_ = intake.Admit(msg.To, class, admittedMsg{msg: msg, dup: true})
	}
	if engine == nil {
		for {
			items := intake.Drain(msg.To)
			if len(items) == 0 {
				return nil
			}
			b.deliverAdmitted(items, ep, nil)
		}
	}
	if intake.BeginDrain(msg.To) {
		b.scheduleDrain(engine, latency, msg.To, ep)
	}
	return nil
}

// scheduleDrain queues one drain pass for the recipient: sharded by
// recipient for lane handlers, as a serial barrier for plain ones
// (which may touch shared state).
func (b *Bus) scheduleDrain(engine *sim.Engine, delay time.Duration, to string, ep endpoint) {
	if ep.lh != nil {
		engine.ScheduleShard(delay, to, func(lane *sim.Lane) { b.drainPass(to, ep, lane) })
		return
	}
	engine.Schedule(delay, func() { b.drainPass(to, ep, nil) })
}

// drainPass delivers one batch from the recipient's intake queue and
// reschedules itself (through the lane, keeping parallel runs
// deterministic) while messages remain.
func (b *Bus) drainPass(to string, ep endpoint, lane *sim.Lane) {
	intake := b.intake
	items := intake.Drain(to)
	b.deliverAdmitted(items, ep, lane)
	if !intake.FinishDrain(to) {
		return
	}
	delay := intake.DrainInterval()
	if ep.lh != nil {
		lane.ScheduleShard(delay, to, func(l *sim.Lane) { b.drainPass(to, ep, l) })
		return
	}
	b.engine.Schedule(delay, func() { b.drainPass(to, ep, nil) })
}

// deliverAdmitted hands drained items to the endpoint: originals move
// from pending to delivered, duplicates count as duplicated.
func (b *Bus) deliverAdmitted(items []admission.Item, ep endpoint, lane *sim.Lane) {
	for _, it := range items {
		am, ok := it.Payload.(admittedMsg)
		if !ok {
			continue
		}
		b.mu.Lock()
		if am.dup {
			b.duplicated++
		} else {
			b.pending--
			b.delivered++
		}
		b.mu.Unlock()
		if am.dup {
			b.cDup.Inc()
		} else {
			b.cDelivered.Inc()
		}
		ep.call(am.msg, lane)
	}
}

// scheduleDelivery queues one delivery on the engine: sharded by
// recipient for lane handlers, as a serial barrier for plain ones.
func scheduleDelivery(engine *sim.Engine, latency time.Duration, ep endpoint, msg Message) {
	if ep.lh != nil {
		engine.ScheduleShard(latency, msg.To, func(lane *sim.Lane) { ep.lh(msg, lane) })
		return
	}
	engine.Schedule(latency, func() { ep.h(msg) })
}

// Broadcast sends the payload to every attached node except the
// sender. It returns the number of successful (or scheduled)
// deliveries.
func (b *Bus) Broadcast(from, topic string, payload any) int {
	n := 0
	for _, id := range b.Nodes() {
		if id == from {
			continue
		}
		if err := b.Send(Message{From: from, To: id, Topic: topic, Payload: payload}); err == nil {
			n++
		}
	}
	return n
}

// Stats returns the delivered and dropped message counts. Every Send
// to an attached receiver counts exactly once as delivered, dropped,
// shed, or still queued behind admission, so
// sent == delivered + dropped + shed + pending at every instant
// (duplicates are tracked separately by Duplicated; CheckConservation
// asserts the invariant).
func (b *Bus) Stats() (delivered, dropped int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.delivered, b.dropped
}

// Sent returns how many Send calls addressed an attached recipient.
func (b *Bus) Sent() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.sent
}

// Shed returns how many sends the admission controller refused with a
// typed cause (queue full, rate limited).
func (b *Bus) Shed() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.shed
}

// PendingAdmitted returns how many admitted originals are still
// queued awaiting drain (0 without an admission controller;
// fault-injected duplicates queue alongside but are not counted
// here).
func (b *Bus) PendingAdmitted() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.pending
}

// BridgeDropped returns how many wire-bridged messages the bus
// refused (see BridgeToBus).
func (b *Bus) BridgeDropped() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.bridgeDrop
}

// CheckConservation verifies the bus's books balance exactly:
// sent == delivered + dropped + shed + pending. Every message a
// caller handed to an attached recipient is therefore provably
// delivered, dropped-with-cause, shed-with-cause, or still queued —
// there is no silent path out.
func (b *Bus) CheckConservation() error {
	b.mu.Lock()
	sent, delivered, dropped, shed, pending := b.sent, b.delivered, b.dropped, b.shed, b.pending
	intake := b.intake
	b.mu.Unlock()
	if sent != delivered+dropped+shed+pending {
		return fmt.Errorf("network: conservation violated: sent %d != delivered %d + dropped %d + shed %d + pending %d",
			sent, delivered, dropped, shed, pending)
	}
	if intake != nil {
		if err := intake.CheckConservation(); err != nil {
			return err
		}
	}
	return nil
}

// countBridgeDrop records one wire-bridged message the bus refused.
func (b *Bus) countBridgeDrop(cause string) {
	b.mu.Lock()
	b.bridgeDrop++
	m := b.metrics
	b.mu.Unlock()
	if reg := m.Registry(); reg != nil {
		reg.Counter("bus.bridge_dropped", "cause", cause).Inc()
	}
}

// Duplicated returns how many messages were delivered twice by the
// duplication fault.
func (b *Bus) Duplicated() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.duplicated
}

func (b *Bus) sampleLatencyLocked() time.Duration {
	if b.maxLatency <= b.minLatency || b.rng == nil {
		return b.minLatency
	}
	span := b.maxLatency - b.minLatency
	return b.minLatency + time.Duration(b.rng.Int63n(int64(span)+1))
}
