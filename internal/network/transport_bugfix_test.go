package network

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/admission"
	"repro/internal/resilience"
	"repro/internal/sim"
)

func TestBridgeToBusCountsAndSurfacesErrors(t *testing.T) {
	metrics := sim.NewMetrics()
	bus := NewBus(rand.New(rand.NewSource(1)), WithMetrics(metrics))
	if err := bus.Attach("d1", func(Message) {}); err != nil {
		t.Fatal(err)
	}
	if err := bus.Attach("d2", func(Message) {}); err != nil {
		t.Fatal(err)
	}
	bus.Partition(map[string]int{"d2": 1})

	var mu sync.Mutex
	var surfaced []error
	handler := BridgeToBus(bus, WithBridgeErrorHandler(func(w WireMessage, err error) {
		mu.Lock()
		surfaced = append(surfaced, err)
		mu.Unlock()
	}))

	handler(WireMessage{From: "remote", To: "d1", Topic: "cmd"})    // delivered
	handler(WireMessage{From: "remote", To: "ghost", Topic: "cmd"}) // unknown
	handler(WireMessage{From: "remote", To: "d2", Topic: "cmd"})    // partitioned

	if got := bus.BridgeDropped(); got != 2 {
		t.Fatalf("BridgeDropped = %d, want 2", got)
	}
	if len(surfaced) != 2 {
		t.Fatalf("surfaced %d errors, want 2", len(surfaced))
	}
	if !errors.Is(surfaced[0], ErrUnknownNode) {
		t.Errorf("first surfaced error = %v, want ErrUnknownNode", surfaced[0])
	}
	if !errors.Is(surfaced[1], ErrDropped) {
		t.Errorf("second surfaced error = %v, want ErrDropped", surfaced[1])
	}
	counters, _ := metrics.Snapshot()
	if counters[`bus.bridge_dropped{cause="unknown_node"}`] != 1 {
		t.Errorf("bridge_dropped counters = %v, want unknown_node=1", counters)
	}
	if counters[`bus.bridge_dropped{cause="partition"}`] != 1 {
		t.Errorf("bridge_dropped counters = %v, want partition=1", counters)
	}
}

func TestBridgeDropCauseMapping(t *testing.T) {
	cases := []struct {
		err  error
		want string
	}{
		{fmt.Errorf("%w: %q", ErrUnknownNode, "x"), "unknown_node"},
		{fmt.Errorf("%w: partition between %q and %q", ErrDropped, "a", "b"), "partition"},
		{fmt.Errorf("%w: loss", ErrDropped), "loss"},
		{fmt.Errorf("%w: human intake", admission.ErrQueueFull), "queue_full"},
		{fmt.Errorf("%w: human intake", admission.ErrRateLimited), "rate_limited"},
		{errors.New("boom"), "error"},
	}
	for _, tc := range cases {
		if got := bridgeDropCause(tc.err); got != tc.want {
			t.Errorf("bridgeDropCause(%v) = %q, want %q", tc.err, got, tc.want)
		}
	}
}

// TestResilientClientClosedStaysClosed is the regression test for the
// silent-redial bug: Send on a closed client used to dial a fresh
// connection and resurrect it.
func TestResilientClientClosedStaysClosed(t *testing.T) {
	var mu sync.Mutex
	received := 0
	srv, err := Serve("127.0.0.1:0", func(WireMessage) {
		mu.Lock()
		received++
		mu.Unlock()
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = srv.Close() }()

	c, err := DialResilient(srv.Addr(), resilience.Retry{MaxAttempts: 3, Sleep: func(time.Duration) {}})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Send(WireMessage{From: "a", To: "b", Topic: "t"}); err != nil {
		t.Fatalf("Send before Close: %v", err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if err := c.Send(WireMessage{From: "a", To: "b", Topic: "t"}); !errors.Is(err, ErrClosed) {
		t.Fatalf("Send after Close = %v, want ErrClosed", err)
	}
	c.mu.Lock()
	resurrected := c.conn != nil
	c.mu.Unlock()
	if resurrected {
		t.Fatal("Send after Close redialed the connection")
	}
}

// recordingConn is a fake net.Conn that records every write deadline.
type recordingConn struct {
	mu        sync.Mutex
	deadlines []time.Time
}

func (c *recordingConn) Read(p []byte) (int, error)      { return 0, io.EOF }
func (c *recordingConn) Write(p []byte) (int, error)     { return len(p), nil }
func (c *recordingConn) Close() error                    { return nil }
func (c *recordingConn) LocalAddr() net.Addr             { return &net.TCPAddr{} }
func (c *recordingConn) RemoteAddr() net.Addr            { return &net.TCPAddr{} }
func (c *recordingConn) SetDeadline(time.Time) error     { return nil }
func (c *recordingConn) SetReadDeadline(time.Time) error { return nil }
func (c *recordingConn) SetWriteDeadline(t time.Time) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.deadlines = append(c.deadlines, t)
	return nil
}

// TestResilientClientClearsWriteDeadline is the regression test for
// the stale-deadline bug: a successful send must disarm the per-call
// write deadline so it cannot fire later.
func TestResilientClientClearsWriteDeadline(t *testing.T) {
	fake := &recordingConn{}
	rc := &ResilientClient{
		SendTimeout: 50 * time.Millisecond,
		conn:        &Client{conn: fake, enc: json.NewEncoder(fake)},
	}
	if err := rc.Send(WireMessage{From: "a", To: "b", Topic: "t"}); err != nil {
		t.Fatal(err)
	}
	fake.mu.Lock()
	defer fake.mu.Unlock()
	if len(fake.deadlines) < 2 {
		t.Fatalf("recorded %d deadline calls, want arm + disarm", len(fake.deadlines))
	}
	if fake.deadlines[0].IsZero() {
		t.Fatal("deadline was never armed")
	}
	if last := fake.deadlines[len(fake.deadlines)-1]; !last.IsZero() {
		t.Fatalf("deadline left armed at %v after a successful send", last)
	}
}
