package network

import (
	"errors"
	"testing"
	"time"

	"repro/internal/admission"
	"repro/internal/sim"
)

// TestBusNilRNGFaultsStillFire is the regression test for the
// silent-no-op bug: a bus built without a random source used to skip
// loss and duplication sampling entirely.
func TestBusNilRNGFaultsStillFire(t *testing.T) {
	bus := NewBus(nil, WithLoss(1.0))
	delivered := 0
	if err := bus.Attach("d", func(Message) { delivered++ }); err != nil {
		t.Fatal(err)
	}
	if err := bus.Send(Message{From: "a", To: "d", Topic: "t"}); !errors.Is(err, ErrDropped) {
		t.Fatalf("loss 1.0 on nil-rng bus delivered (err=%v) — fault was a silent no-op", err)
	}
	if delivered != 0 {
		t.Fatal("message delivered despite loss 1.0")
	}
}

func TestBusNilRNGRuntimeFaultsStillFire(t *testing.T) {
	bus := NewBus(nil) // no faults configured, rng legitimately nil
	n := 0
	if err := bus.Attach("d", func(Message) { n++ }); err != nil {
		t.Fatal(err)
	}
	bus.SetLoss(1.0) // fault injection must default the rng
	if err := bus.Send(Message{From: "a", To: "d", Topic: "t"}); !errors.Is(err, ErrDropped) {
		t.Fatalf("SetLoss(1.0) on nil-rng bus delivered (err=%v)", err)
	}
	bus.SetLoss(0)
	bus.SetDuplication(1.0)
	if err := bus.Send(Message{From: "a", To: "d", Topic: "t"}); err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("delivered %d times, want original + duplicate", n)
	}
	if bus.Duplicated() != 1 {
		t.Fatalf("Duplicated = %d, want 1", bus.Duplicated())
	}
}

func TestBusAdmissionSynchronousDelivery(t *testing.T) {
	now := time.Unix(0, 0)
	ctrl, err := admission.New(admission.Config{
		Rate: 1, Burst: 1, Now: func() time.Time { return now },
	})
	if err != nil {
		t.Fatal(err)
	}
	bus := NewBus(nil, WithAdmission(ctrl))
	var got []Message
	if err := bus.Attach("d", func(m Message) { got = append(got, m) }); err != nil {
		t.Fatal(err)
	}
	if err := bus.Send(Message{From: "h", To: "d", Topic: "command", Payload: 1}); err != nil {
		t.Fatalf("first send: %v", err)
	}
	if len(got) != 1 {
		t.Fatalf("delivered %d, want synchronous delivery", len(got))
	}
	err = bus.Send(Message{From: "h", To: "d", Topic: "command", Payload: 2})
	if !errors.Is(err, admission.ErrRateLimited) {
		t.Fatalf("second send = %v, want ErrRateLimited", err)
	}
	if bus.Shed() != 1 || bus.Sent() != 2 {
		t.Fatalf("sent=%d shed=%d", bus.Sent(), bus.Shed())
	}
	if err := bus.CheckConservation(); err != nil {
		t.Fatal(err)
	}
}

// TestBusAdmissionEvictionKeepsBooksExact covers the eviction path: a
// queued background message displaced by a human arrival must move to
// the shed column, not vanish.
func TestBusAdmissionEvictionKeepsBooksExact(t *testing.T) {
	clock := sim.NewClock(time.Unix(0, 0))
	engine := sim.NewEngine(clock)
	ctrl, err := admission.New(admission.Config{
		QueueCapacity: 1, Now: clock.Now, DrainBatch: 8, DrainInterval: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	bus := NewBus(nil,
		WithEngine(engine),
		WithAdmission(ctrl),
		WithLatency(time.Millisecond, time.Millisecond))
	var topics []string
	if err := bus.AttachLane("d", func(m Message, _ *sim.Lane) {
		topics = append(topics, m.Topic)
	}); err != nil {
		t.Fatal(err)
	}
	// Both sends land in one barrier event, before the 1ms drain: the
	// human arrival finds the single-slot queue full and evicts the
	// queued gossip message.
	engine.Schedule(0, func() {
		if err := bus.Send(Message{From: "p", To: "d", Topic: "gossip"}); err != nil {
			t.Errorf("gossip send: %v", err)
		}
		if err := bus.Send(Message{From: "h", To: "d", Topic: "command"}); err != nil {
			t.Errorf("command send: %v", err)
		}
	})
	if err := engine.Run(clock.Now().Add(100 * time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	if len(topics) != 1 || topics[0] != "command" {
		t.Fatalf("delivered %v, want only the command", topics)
	}
	delivered, dropped := bus.Stats()
	if bus.Sent() != 2 || delivered != 1 || bus.Shed() != 1 || dropped != 0 || bus.PendingAdmitted() != 0 {
		t.Fatalf("books: sent=%d delivered=%d shed=%d dropped=%d pending=%d",
			bus.Sent(), delivered, bus.Shed(), dropped, bus.PendingAdmitted())
	}
	if err := bus.CheckConservation(); err != nil {
		t.Fatal(err)
	}
	counts := ctrl.Counts()
	if counts.Evicted[admission.ClassBackground] != 1 {
		t.Fatalf("Evicted = %+v", counts.Evicted)
	}
}

// TestBusAdmissionEngineDrainConservation floods one recipient far
// past its queue bound on the engine and checks the books balance
// exactly once the queues drain.
func TestBusAdmissionEngineDrainConservation(t *testing.T) {
	clock := sim.NewClock(time.Unix(0, 0))
	engine := sim.NewEngine(clock)
	ctrl, err := admission.New(admission.Config{
		QueueCapacity: 4, Now: clock.Now, DrainBatch: 2, DrainInterval: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	bus := NewBus(nil,
		WithEngine(engine),
		WithAdmission(ctrl),
		WithLatency(time.Millisecond, time.Millisecond))
	delivered := 0
	if err := bus.AttachLane("d", func(Message, *sim.Lane) { delivered++ }); err != nil {
		t.Fatal(err)
	}
	shed := 0
	for i := 0; i < 10; i++ {
		at := time.Duration(i) * 100 * time.Microsecond
		engine.Schedule(at, func() {
			for k := 0; k < 3; k++ {
				if err := bus.Send(Message{From: "h", To: "d", Topic: "gossip"}); err != nil {
					shed++
				}
			}
		})
	}
	if err := engine.Run(clock.Now().Add(time.Second)); err != nil {
		t.Fatal(err)
	}
	busDelivered, _ := bus.Stats()
	if bus.Sent() != 30 {
		t.Fatalf("sent = %d", bus.Sent())
	}
	if busDelivered != delivered {
		t.Fatalf("bus delivered %d, handler saw %d", busDelivered, delivered)
	}
	if shed != bus.Shed() {
		t.Fatalf("caller saw %d sheds, bus counted %d", shed, bus.Shed())
	}
	if shed == 0 {
		t.Fatal("overload did not shed — the queue bound is not binding")
	}
	if bus.PendingAdmitted() != 0 {
		t.Fatalf("pending = %d after drain window", bus.PendingAdmitted())
	}
	if err := bus.CheckConservation(); err != nil {
		t.Fatal(err)
	}
}
