package bundle

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/policy"
)

// TestActivationAtomicUnderConcurrency is the activation-atomicity
// property test: while an agent applies a stream of revisions, readers
// hammer Evaluate on the same set. Every revision stamps all policies
// with its own action target, so a torn activation — a snapshot mixing
// policies from two revisions — is directly observable as a decision
// whose actions disagree on the target, or disagree with the snapshot's
// own revision stamp. The final set is also compared against a serial
// re-application of the same revisions (the differential oracle). Run
// under -race via make test-race.
func TestActivationAtomicUnderConcurrency(t *testing.T) {
	const (
		nPolicies  = 6
		nRevisions = 40
		nReaders   = 4
	)

	set := policy.NewSet()
	agent := NewAgent(set, testKey())
	pub := NewPublisher(testKey())

	bundles := make([]Bundle, 0, nRevisions)
	for r := 1; r <= nRevisions; r++ {
		full, _, err := pub.Publish(mkPolicies(t, nPolicies, fmt.Sprintf("rev%d", r)))
		if err != nil {
			t.Fatalf("Publish rev %d: %v", r, err)
		}
		bundles = append(bundles, full)
	}

	if _, err := agent.Apply(bundles[0]); err != nil {
		t.Fatalf("seed revision: %v", err)
	}

	env := policy.Env{Event: policy.Event{
		Type:  "smoke-detected",
		Attrs: map[string]float64{"intensity": 1000},
	}}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	violations := make(chan string, nReaders)

	for i := 0; i < nReaders; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				snap := set.Snapshot()
				d := snap.Evaluate(env)
				if len(d.Actions) != nPolicies {
					violations <- fmt.Sprintf("decision matched %d actions, want %d", len(d.Actions), nPolicies)
					return
				}
				want := fmt.Sprintf("rev%d", snap.Revision())
				for _, a := range d.Actions {
					if a.Target != want {
						violations <- fmt.Sprintf("snapshot at revision %d evaluated policy targeting %q — torn activation", snap.Revision(), a.Target)
						return
					}
				}
			}
		}()
	}

	for _, b := range bundles[1:] {
		if applied, err := agent.Apply(b); err != nil || !applied {
			close(stop)
			wg.Wait()
			t.Fatalf("Apply rev %d: applied=%v err=%v", b.Manifest.Revision, applied, err)
		}
	}
	close(stop)
	wg.Wait()
	close(violations)
	for v := range violations {
		t.Error(v)
	}

	// Differential oracle: a serial agent applying the same bundles
	// must land on an identical policy set.
	serial := policy.NewSet()
	serialAgent := NewAgent(serial, testKey())
	for _, b := range bundles {
		if _, err := serialAgent.Apply(b); err != nil {
			t.Fatalf("serial apply rev %d: %v", b.Manifest.Revision, err)
		}
	}
	if set.Len() != serial.Len() {
		t.Fatalf("concurrent set has %d policies, serial %d", set.Len(), serial.Len())
	}
	for _, p := range serial.All() {
		got, ok := set.Get(p.ID)
		if !ok {
			t.Fatalf("policy %s missing from concurrent set", p.ID)
		}
		if got.Action.Target != p.Action.Target || got.Priority != p.Priority {
			t.Fatalf("policy %s differs: concurrent target %q, serial %q", p.ID, got.Action.Target, p.Action.Target)
		}
	}
	if set.Snapshot().Revision() != serial.Snapshot().Revision() {
		t.Fatalf("final revisions differ: %d vs %d", set.Snapshot().Revision(), serial.Snapshot().Revision())
	}
}
