package bundle

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Scope is the coverage a signing key is authorized for: a key signs
// for exactly one organization's bundle root, and only for policy IDs
// under that organization's prefixes. The zero Scope is unrestricted —
// the single-root deployment where one fleet key signs everything.
//
// Scope is what makes a compromised coalition key a bounded loss: org
// A's key can still sign syntactically valid bundles, but a receiver
// holding the scope refuses any bundle that names an org-B policy (or
// claims org B's root) with ErrScope, so the blast radius of a stolen
// key never crosses a trust boundary.
type Scope struct {
	// Org names the organization whose bundle root this key signs.
	Org string
	// Prefixes are the policy-ID prefixes the key may install or
	// remove. Empty defaults to {Org + "."} — the org-prefixed ID
	// convention (e.g. org "us" covers "us.patrol-alt").
	Prefixes []string
}

// Restricted reports whether the scope constrains anything; the zero
// Scope is unrestricted.
func (s Scope) Restricted() bool { return s.Org != "" || len(s.Prefixes) > 0 }

// effective returns the prefix list the scope enforces.
func (s Scope) effective() []string {
	if len(s.Prefixes) > 0 {
		return s.Prefixes
	}
	if s.Org != "" {
		return []string{s.Org + "."}
	}
	return nil
}

// Allows reports whether the scope authorizes the policy ID.
func (s Scope) Allows(policyID string) bool {
	ps := s.effective()
	if len(ps) == 0 {
		return true
	}
	for _, p := range ps {
		if strings.HasPrefix(policyID, p) {
			return true
		}
	}
	return false
}

// checkScope enforces a restricted scope against a whole bundle: the
// manifest must claim the key's own org root, and every policy ID the
// bundle could install or remove — coverage entries, carried records,
// and explicit removals — must fall under the key's prefixes. Any
// violation is ErrScope; a bundle that clears this never names another
// org's policies even transitively through the coverage map.
func checkScope(s Scope, b Bundle) error {
	if b.Manifest.Org != s.Org {
		return fmt.Errorf("%w: key %q scoped to org %q, manifest claims %q", ErrScope, b.KeyID, s.Org, b.Manifest.Org)
	}
	for id := range b.Manifest.Coverage {
		if !s.Allows(id) {
			return fmt.Errorf("%w: key %q covers policy %q", ErrScope, b.KeyID, id)
		}
	}
	for _, rec := range b.Records {
		if !s.Allows(rec.ID) {
			return fmt.Errorf("%w: key %q carries record %q", ErrScope, b.KeyID, rec.ID)
		}
	}
	for _, id := range b.Manifest.Removed {
		if !s.Allows(id) {
			return fmt.Errorf("%w: key %q removes policy %q", ErrScope, b.KeyID, id)
		}
	}
	return nil
}

// ScopedVerifier is a Verifier that also knows each key's authorized
// scope. Agents check it after the signature verifies: a valid
// signature from an in-ring key proves who signed, the scope decides
// what that signer was allowed to sign.
type ScopedVerifier interface {
	Verifier
	// ScopeOf returns the scope bound to a key ID; ok is false for
	// keys the ring does not hold.
	ScopeOf(keyID string) (Scope, bool)
}

// KeyRing is a multi-root trust store: one Verifier plus Scope per key
// ID. It is the device-side verifier of a coalition deployment — a
// device trusts several organizations' signing keys, each confined to
// its own root. Unknown key IDs fail verification (fail closed).
type KeyRing struct {
	mu      sync.RWMutex
	entries map[string]ringEntry
}

type ringEntry struct {
	v     Verifier
	scope Scope
}

// NewKeyRing returns an empty ring.
func NewKeyRing() *KeyRing {
	return &KeyRing{entries: make(map[string]ringEntry)}
}

// Add binds a verifier and its scope to a key ID, replacing any
// previous binding. The verifier still checks the key ID itself, so a
// ring entry registered under the wrong name cannot verify.
func (r *KeyRing) Add(keyID string, v Verifier, scope Scope) *KeyRing {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.entries[keyID] = ringEntry{v: v, scope: scope}
	return r
}

// Verify implements Verifier: the key ID selects the ring entry, the
// entry's verifier checks the signature. Unknown keys fail.
func (r *KeyRing) Verify(keyID string, data []byte, sigHex string) bool {
	r.mu.RLock()
	e, ok := r.entries[keyID]
	r.mu.RUnlock()
	if !ok || e.v == nil {
		return false
	}
	return e.v.Verify(keyID, data, sigHex)
}

// ScopeOf implements ScopedVerifier.
func (r *KeyRing) ScopeOf(keyID string) (Scope, bool) {
	r.mu.RLock()
	e, ok := r.entries[keyID]
	r.mu.RUnlock()
	return e.scope, ok
}

// KeyIDs returns the ring's key IDs, sorted.
func (r *KeyRing) KeyIDs() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.entries))
	for id := range r.entries {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}
