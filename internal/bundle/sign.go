package bundle

import (
	"crypto/ed25519"
	"crypto/hmac"
	"crypto/sha256"
	"crypto/subtle"
	"encoding/hex"
)

// Signer produces signatures the fleet's Verifier accepts.
type Signer interface {
	// KeyID names the key so receivers can select the right material.
	KeyID() string
	// Sign returns the hex signature over data.
	Sign(data []byte) string
}

// Verifier checks bundle signatures. Implementations must reject
// unknown key IDs.
type Verifier interface {
	Verify(keyID string, data []byte, sigHex string) bool
}

// HMACKey is a shared-secret HMAC-SHA256 key implementing both Signer
// and Verifier — the symmetric deployment where the distributor and
// devices hold the same secret.
type HMACKey struct {
	ID     string
	Secret []byte
}

// KeyID names the key.
func (k HMACKey) KeyID() string { return k.ID }

// Sign returns the hex HMAC-SHA256 of data.
func (k HMACKey) Sign(data []byte) string {
	mac := hmac.New(sha256.New, k.Secret)
	mac.Write(data)
	return hex.EncodeToString(mac.Sum(nil))
}

// Verify checks the tag in constant time; a foreign key ID fails.
func (k HMACKey) Verify(keyID string, data []byte, sigHex string) bool {
	if subtle.ConstantTimeCompare([]byte(keyID), []byte(k.ID)) != 1 {
		return false
	}
	want, err := hex.DecodeString(k.Sign(data))
	if err != nil {
		return false
	}
	got, err := hex.DecodeString(sigHex)
	if err != nil {
		return false
	}
	return hmac.Equal(want, got)
}

// Ed25519Signer signs with an ed25519 private key — the asymmetric
// deployment where devices hold only the public half and a compromised
// device cannot forge bundles for the rest of the fleet.
type Ed25519Signer struct {
	ID  string
	Key ed25519.PrivateKey
}

// NewEd25519Signer derives a deterministic signer from a 32-byte seed.
func NewEd25519Signer(id string, seed []byte) Ed25519Signer {
	return Ed25519Signer{ID: id, Key: ed25519.NewKeyFromSeed(seed)}
}

// KeyID names the key.
func (s Ed25519Signer) KeyID() string { return s.ID }

// Sign returns the hex ed25519 signature over data.
func (s Ed25519Signer) Sign(data []byte) string {
	return hex.EncodeToString(ed25519.Sign(s.Key, data))
}

// PublicVerifier returns the device-side verifier for this signer.
func (s Ed25519Signer) PublicVerifier() Ed25519Verifier {
	return Ed25519Verifier{ID: s.ID, Key: s.Key.Public().(ed25519.PublicKey)}
}

// Ed25519Verifier verifies with the public half only.
type Ed25519Verifier struct {
	ID  string
	Key ed25519.PublicKey
}

// Verify checks the signature; a foreign key ID fails.
func (v Ed25519Verifier) Verify(keyID string, data []byte, sigHex string) bool {
	if keyID != v.ID {
		return false
	}
	sig, err := hex.DecodeString(sigHex)
	if err != nil || len(sig) != ed25519.SignatureSize {
		return false
	}
	return ed25519.Verify(v.Key, data, sig)
}
