package bundle

import (
	"strings"
	"testing"

	"repro/internal/policy"
)

// FuzzBundleDecode throws arbitrary, truncated and re-signed bytes at
// the device-side pipeline. The invariants under fuzzing are the
// fail-closed ones: the agent never panics, never activates a bundle it
// could not verify under its own key, and never leaves its previous
// revision unless the bundle verified.
func FuzzBundleDecode(f *testing.F) {
	// Seed corpus: a legitimate bundle, truncations of it, a re-signed
	// tampering, and assorted structural garbage.
	seedPub := NewPublisher(testKey())
	full, _, err := seedPub.Publish(mkPolicies(f, 3, "seed"))
	if err != nil {
		f.Fatalf("seed publish: %v", err)
	}
	good, _ := Encode(full)
	f.Add(good)
	f.Add(good[:len(good)/2])
	f.Add(good[:len(good)-1])
	tampered := full
	tampered.Manifest.Revision = 99
	tamperedBytes, _ := Encode(tampered)
	f.Add(tamperedBytes)
	rogue := full
	rogue.SignWith(HMACKey{ID: "rogue", Secret: []byte("rogue")})
	rogueBytes, _ := Encode(rogue)
	f.Add(rogueBytes)
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"manifest":{"revision":1,"coverage":{}},"records":[]}`))
	f.Add([]byte(`{"manifest":{"revision":1,"coverage":null,"root":""},"records":[{"id":"","source":"","hash":""}]}`))
	f.Add([]byte(strings.Repeat(`[`, 64)))
	// Scoped manifests: a legitimate org-rooted bundle, the same bundle
	// with its org swapped after signing, and a cross-org smuggle (org-A
	// manifest carrying an org-B record) re-rooted and re-signed.
	orgPub := NewOrgPublisher(orgKey("us"), "us")
	orgFull, _, err := orgPub.Publish(mkOrgPolicies(f, "us", 2, "seed"))
	if err != nil {
		f.Fatalf("org seed publish: %v", err)
	}
	orgBytes, _ := Encode(orgFull)
	f.Add(orgBytes)
	swapped := orgFull
	swapped.Manifest.Org = "uk"
	swappedBytes, _ := Encode(swapped)
	f.Add(swappedBytes)
	smuggle := orgFull
	foreign := mkOrgPolicies(f, "uk", 1, "seed")[0]
	smuggle.Manifest.Coverage = map[string]string{foreign.ID: "00"}
	smuggle.Manifest.Root = ComputeRoot(smuggle.Manifest)
	smuggle.SignWith(orgKey("us"))
	smuggleBytes, _ := Encode(smuggle)
	f.Add(smuggleBytes)

	f.Fuzz(func(t *testing.T, data []byte) {
		// The fuzzing agent trusts a key the corpus was NOT signed
		// with, so no fuzzer-discovered input can legitimately verify:
		// any activation is a fail-closed violation.
		set := policy.NewSet()
		agent := NewAgent(set, HMACKey{ID: "fuzz-key", Secret: []byte("unknown to any corpus signer")})
		applied, err := agent.ApplyWire(data)
		if applied {
			t.Fatalf("unverifiable input activated (err=%v): %q", err, data)
		}
		if err == nil {
			t.Fatalf("rejected input returned nil error: %q", data)
		}
		if agent.Revision() != 0 || set.Len() != 0 {
			t.Fatalf("rejected input mutated state: rev=%d len=%d", agent.Revision(), set.Len())
		}
		// A scoped receiver is at least as closed: an agent whose ring
		// holds only a uk-scoped key can never activate corpus inputs
		// (signed by us/legacy keys or garbage), whatever org they claim.
		scopedSet := policy.NewSet()
		ring := NewKeyRing().Add(orgKey("uk").ID, orgKey("uk"), Scope{Org: "uk"})
		scoped := NewOrgAgent(scopedSet, ring, "uk")
		if applied, err := scoped.ApplyWire(data); applied || err == nil {
			t.Fatalf("scoped agent activated unverifiable input (applied=%v err=%v): %q", applied, err, data)
		}
		if scoped.Revision() != 0 || scopedSet.Len() != 0 {
			t.Fatalf("scoped agent mutated state: rev=%d len=%d", scoped.Revision(), scopedSet.Len())
		}
	})
}
