package bundle

import (
	"strings"
	"testing"

	"repro/internal/policy"
)

// FuzzBundleDecode throws arbitrary, truncated and re-signed bytes at
// the device-side pipeline. The invariants under fuzzing are the
// fail-closed ones: the agent never panics, never activates a bundle it
// could not verify under its own key, and never leaves its previous
// revision unless the bundle verified.
func FuzzBundleDecode(f *testing.F) {
	// Seed corpus: a legitimate bundle, truncations of it, a re-signed
	// tampering, and assorted structural garbage.
	seedPub := NewPublisher(testKey())
	full, _, err := seedPub.Publish(mkPolicies(f, 3, "seed"))
	if err != nil {
		f.Fatalf("seed publish: %v", err)
	}
	good, _ := Encode(full)
	f.Add(good)
	f.Add(good[:len(good)/2])
	f.Add(good[:len(good)-1])
	tampered := full
	tampered.Manifest.Revision = 99
	tamperedBytes, _ := Encode(tampered)
	f.Add(tamperedBytes)
	rogue := full
	rogue.SignWith(HMACKey{ID: "rogue", Secret: []byte("rogue")})
	rogueBytes, _ := Encode(rogue)
	f.Add(rogueBytes)
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"manifest":{"revision":1,"coverage":{}},"records":[]}`))
	f.Add([]byte(`{"manifest":{"revision":1,"coverage":null,"root":""},"records":[{"id":"","source":"","hash":""}]}`))
	f.Add([]byte(strings.Repeat(`[`, 64)))

	f.Fuzz(func(t *testing.T, data []byte) {
		// The fuzzing agent trusts a key the corpus was NOT signed
		// with, so no fuzzer-discovered input can legitimately verify:
		// any activation is a fail-closed violation.
		set := policy.NewSet()
		agent := NewAgent(set, HMACKey{ID: "fuzz-key", Secret: []byte("unknown to any corpus signer")})
		applied, err := agent.ApplyWire(data)
		if applied {
			t.Fatalf("unverifiable input activated (err=%v): %q", err, data)
		}
		if err == nil {
			t.Fatalf("rejected input returned nil error: %q", data)
		}
		if agent.Revision() != 0 || set.Len() != 0 {
			t.Fatalf("rejected input mutated state: rev=%d len=%d", agent.Revision(), set.Len())
		}
	})
}
