// Package bundle is the signed, versioned policy-distribution plane:
// the control plane packages a coherent policy revision into a bundle
// — per-policy content hashes, a coverage map describing the complete
// post-activation policy set, a root hash binding both to a
// monotonically increasing revision number, and a signature over the
// whole — and devices verify everything before touching live state.
//
// The design is fail-closed by construction (the paper's Section VI
// posture applied to policy distribution itself): a device activates a
// revision only after the signature, the root, the delta chain, every
// record hash and the full coverage map check out, and activation is
// one atomic swap through the compiled-snapshot machinery — a device
// is always on exactly one fully verified revision, never a mix, and
// any defect leaves it on the previous verified revision. Delta
// bundles carry only the changed policies (plus the coverage map), so
// a fleet-wide revision costs bytes proportional to the change, not
// the policy set.
//
// Policies travel as canonical policylang source: Parse(Print(rule))
// round-trips exactly, so the text is both the wire format and the
// hashed content.
package bundle

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"strings"
)

// Kind labels on bundles and their metrics.
const (
	KindFull  = "full"
	KindDelta = "delta"
)

// Record is one policy in wire form.
type Record struct {
	// ID is the policy ID (must match the compiled policy's ID).
	ID string `json:"id"`
	// Source is the canonical policylang text of the policy.
	Source string `json:"source"`
	// Hash is the hex SHA-256 of Source.
	Hash string `json:"hash"`
}

// Manifest describes one signed revision.
type Manifest struct {
	// Org names the organization whose bundle root this revision
	// belongs to ("" = the single-root deployment). Each org root is
	// an independent revision stream; receivers holding a scoped
	// verifier refuse a manifest whose org does not match the signing
	// key's scope.
	Org string `json:"org,omitempty"`
	// Revision is the monotonically increasing revision number.
	Revision uint64 `json:"revision"`
	// Base is the revision this delta patches (0 = full bundle).
	Base uint64 `json:"base,omitempty"`
	// Removed lists policy IDs deleted by this delta (sorted).
	Removed []string `json:"removed,omitempty"`
	// Coverage maps every policy ID in the complete post-activation
	// set to its content hash — full and delta bundles alike describe
	// the whole revision, so a receiver can prove it holds nothing
	// more and nothing less.
	Coverage map[string]string `json:"coverage"`
	// Root is the hex root hash binding Revision, Base, Removed and
	// Coverage.
	Root string `json:"root"`
}

// Kind reports whether the manifest describes a full or delta bundle.
func (m Manifest) Kind() string {
	if m.Base > 0 {
		return KindDelta
	}
	return KindFull
}

// Bundle is one signed, versioned policy revision on the wire.
type Bundle struct {
	Manifest Manifest `json:"manifest"`
	// Records carry the policy sources: the whole set for a full
	// bundle, only the changed policies for a delta.
	Records []Record `json:"records"`
	// KeyID names the signing key; Sig is the hex signature over
	// SigningBytes.
	KeyID string `json:"keyID"`
	Sig   string `json:"sig"`
}

// Kind reports full or delta.
func (b Bundle) Kind() string { return b.Manifest.Kind() }

// HashSource returns the hex SHA-256 content hash of canonical policy
// source.
func HashSource(src string) string {
	sum := sha256.Sum256([]byte(src))
	return hex.EncodeToString(sum[:])
}

// ComputeRoot derives the manifest's root hash from its other fields:
// org, revision, base, the sorted removals and the sorted coverage
// pairs. Any bit of the revision's identity or contents therefore
// changes the root, and the signature over the bundle pins the root.
func ComputeRoot(m Manifest) string {
	h := sha256.New()
	fmt.Fprintf(h, "org=%s;rev=%d;base=%d;", m.Org, m.Revision, m.Base)
	removed := append([]string(nil), m.Removed...)
	sort.Strings(removed)
	fmt.Fprintf(h, "removed=%s;", strings.Join(removed, ","))
	ids := make([]string, 0, len(m.Coverage))
	for id := range m.Coverage {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		fmt.Fprintf(h, "%s=%s;", id, m.Coverage[id])
	}
	return hex.EncodeToString(h.Sum(nil))
}

// SigningBytes returns the canonical bytes the signature covers: the
// JSON encoding of the bundle with KeyID and Sig cleared (encoding/json
// serializes map keys sorted, so the encoding is deterministic).
func (b Bundle) SigningBytes() []byte {
	shadow := b
	shadow.KeyID = ""
	shadow.Sig = ""
	data, err := json.Marshal(shadow)
	if err != nil {
		// All fields are marshalable; kept defensive so an unhashable
		// bundle can never verify.
		return nil
	}
	return data
}

// SignWith signs the bundle in place.
func (b *Bundle) SignWith(s Signer) {
	b.KeyID = s.KeyID()
	b.Sig = s.Sign(b.SigningBytes())
}

// CheckSig reports whether the bundle's signature verifies under v.
func (b Bundle) CheckSig(v Verifier) bool {
	if v == nil || b.Sig == "" {
		return false
	}
	return v.Verify(b.KeyID, b.SigningBytes(), b.Sig)
}

// ErrDecode marks wire bytes that do not parse as a bundle.
var ErrDecode = errors.New("bundle: undecodable bytes")

// Encode serializes the bundle for the wire.
func Encode(b Bundle) ([]byte, error) {
	return json.Marshal(b)
}

// Decode parses wire bytes. It performs only structural parsing;
// Agent.Apply does all semantic verification, so a decoded bundle is
// not yet trusted.
func Decode(data []byte) (Bundle, error) {
	var b Bundle
	if err := json.Unmarshal(data, &b); err != nil {
		return Bundle{}, fmt.Errorf("%w: %v", ErrDecode, err)
	}
	return b, nil
}
