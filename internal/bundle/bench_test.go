package bundle

import (
	"fmt"
	"testing"

	"repro/internal/policy"
)

// BenchmarkBundlePublishFull measures cutting and signing a full revision of
// 32 policies.
func BenchmarkBundlePublishFull(b *testing.B) {
	pols := mkPolicies(b, 32, "bench")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pub := NewPublisher(testKey())
		if _, _, err := pub.Publish(pols); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBundleApplyFull measures full verify-and-activate of a 32-policy
// bundle on a fresh device.
func BenchmarkBundleApplyFull(b *testing.B) {
	pub := NewPublisher(testKey())
	full, _, err := pub.Publish(mkPolicies(b, 32, "bench"))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		agent := NewAgent(policy.NewSet(), testKey())
		if applied, err := agent.Apply(full); err != nil || !applied {
			b.Fatalf("applied=%v err=%v", applied, err)
		}
	}
}

// BenchmarkBundleApplyDelta measures verify-and-activate of a one-policy
// delta against a 32-policy base — the steady-state distribution cost.
func BenchmarkBundleApplyDelta(b *testing.B) {
	benchDelta(b, 32, 1)
}

func benchDelta(b *testing.B, size, changed int) {
	pub := NewPublisher(testKey())
	base := mkPolicies(b, size, "rev1")
	full, _, err := pub.Publish(base)
	if err != nil {
		b.Fatal(err)
	}
	next := mkPolicies(b, size, "rev1")
	copy(next, mkPolicies(b, changed, "rev2"))
	_, delta, err := pub.Publish(next)
	if err != nil {
		b.Fatal(err)
	}
	fullBytes, _ := Encode(full)
	deltaBytes, _ := Encode(delta)
	b.ReportMetric(float64(len(fullBytes)), "full-bytes")
	b.ReportMetric(float64(len(deltaBytes)), "delta-bytes")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		agent := NewAgent(policy.NewSet(), testKey())
		if _, err := agent.Apply(full); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		if applied, err := agent.Apply(delta); err != nil || !applied {
			b.Fatalf("applied=%v err=%v", applied, err)
		}
	}
}

// BenchmarkBundleVerifyReject measures the cost of refusing a tampered
// bundle — the fail-closed hot path under attack.
func BenchmarkBundleVerifyReject(b *testing.B) {
	pub := NewPublisher(testKey())
	full, _, err := pub.Publish(mkPolicies(b, 32, "bench"))
	if err != nil {
		b.Fatal(err)
	}
	full.Sig = fmt.Sprintf("%064x", 0)
	agent := NewAgent(policy.NewSet(), testKey())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if applied, err := agent.Apply(full); applied || err == nil {
			b.Fatal("tampered bundle applied")
		}
	}
}
