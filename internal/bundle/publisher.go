package bundle

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/policy"
	"repro/internal/policylang"
)

// historyDepth bounds how many past revisions the publisher remembers
// for delta derivation; devices further behind get a full bundle.
const historyDepth = 16

// Publisher turns desired policy sets into signed, monotonically
// versioned bundles. It keeps a bounded history of past revisions so it
// can cut a delta against any recently acknowledged base.
type Publisher struct {
	mu      sync.Mutex
	signer  Signer
	org     string
	rev     uint64
	current map[string]Record
	// history maps revision -> coverage (id -> hash) for delta bases.
	history map[uint64]map[string]string
	order   []uint64
}

// NewPublisher creates a publisher signing with s for the unnamed
// (single-root) revision stream.
func NewPublisher(s Signer) *Publisher {
	return NewOrgPublisher(s, "")
}

// NewOrgPublisher creates a publisher for one organization's bundle
// root: every manifest it cuts carries the org, so receivers can bind
// the revision stream to the signing key's scope.
func NewOrgPublisher(s Signer, org string) *Publisher {
	return &Publisher{
		signer:  s,
		org:     org,
		current: make(map[string]Record),
		history: map[uint64]map[string]string{0: {}},
		order:   []uint64{0},
	}
}

// Org returns the organization whose root this publisher cuts ("" =
// single-root).
func (p *Publisher) Org() string { return p.org }

// Revision returns the latest published revision (0 = none yet).
func (p *Publisher) Revision() uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.rev
}

// Publish cuts the next revision from the desired policy set, returning
// both the full bundle and the delta against the previous revision.
// Policies are serialized as canonical policylang source; a policy the
// DSL cannot represent fails the publish (nothing is versioned).
func (p *Publisher) Publish(desired []policy.Policy) (full, delta Bundle, err error) {
	next := make(map[string]Record, len(desired))
	for _, pol := range desired {
		src, ferr := policylang.Format(pol)
		if ferr != nil {
			return Bundle{}, Bundle{}, fmt.Errorf("bundle: policy %s not representable: %w", pol.ID, ferr)
		}
		if _, dup := next[pol.ID]; dup {
			return Bundle{}, Bundle{}, fmt.Errorf("bundle: duplicate policy ID %s", pol.ID)
		}
		next[pol.ID] = Record{ID: pol.ID, Source: src, Hash: HashSource(src)}
	}

	p.mu.Lock()
	defer p.mu.Unlock()
	base := p.rev
	prev := p.current
	p.rev++
	p.current = next

	coverage := make(map[string]string, len(next))
	for id, rec := range next {
		coverage[id] = rec.Hash
	}
	p.history[p.rev] = coverage
	p.order = append(p.order, p.rev)
	if len(p.order) > historyDepth {
		delete(p.history, p.order[0])
		p.order = p.order[1:]
	}

	full = p.assembleLocked(0, nil, allRecords(next))

	var removed []string
	var changed []Record
	for id := range prev {
		if _, ok := next[id]; !ok {
			removed = append(removed, id)
		}
	}
	sort.Strings(removed)
	for id, rec := range next {
		if old, ok := prev[id]; !ok || old.Hash != rec.Hash {
			changed = append(changed, rec)
		}
	}
	sortRecords(changed)
	delta = p.assembleLocked(base, removed, changed)
	return full, delta, nil
}

// Full returns a signed full bundle for the current revision, for
// repair of devices too far behind for any delta base in history.
func (p *Publisher) Full() (Bundle, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.rev == 0 {
		return Bundle{}, fmt.Errorf("bundle: nothing published yet")
	}
	return p.assembleLocked(0, nil, allRecords(p.current)), nil
}

// DeltaFrom returns a signed delta from the given base revision to the
// current one. ok is false when the base left history (or never
// existed) — callers should fall back to Full.
func (p *Publisher) DeltaFrom(base uint64) (Bundle, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.rev == 0 || base >= p.rev {
		return Bundle{}, false
	}
	baseCov, ok := p.history[base]
	if !ok {
		return Bundle{}, false
	}
	var removed []string
	var changed []Record
	for id := range baseCov {
		if _, live := p.current[id]; !live {
			removed = append(removed, id)
		}
	}
	sort.Strings(removed)
	for id, rec := range p.current {
		if old, had := baseCov[id]; !had || old != rec.Hash {
			changed = append(changed, rec)
		}
	}
	sortRecords(changed)
	return p.assembleLocked(base, removed, changed), true
}

// assembleLocked builds and signs a bundle at the current revision.
func (p *Publisher) assembleLocked(base uint64, removed []string, records []Record) Bundle {
	coverage := make(map[string]string, len(p.current))
	for id, rec := range p.current {
		coverage[id] = rec.Hash
	}
	m := Manifest{Org: p.org, Revision: p.rev, Base: base, Removed: removed, Coverage: coverage}
	m.Root = ComputeRoot(m)
	b := Bundle{Manifest: m, Records: records}
	b.SignWith(p.signer)
	return b
}

func allRecords(m map[string]Record) []Record {
	out := make([]Record, 0, len(m))
	for _, rec := range m {
		out = append(out, rec)
	}
	sortRecords(out)
	return out
}

func sortRecords(recs []Record) {
	sort.Slice(recs, func(i, j int) bool { return recs[i].ID < recs[j].ID })
}
