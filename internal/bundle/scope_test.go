package bundle

import (
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/policy"
	"repro/internal/policylang"
)

func orgKey(org string) HMACKey {
	return HMACKey{ID: org + "-root", Secret: []byte(org + " signing secret")}
}

// mkOrgPolicies compiles n policies with org-prefixed IDs (the
// coalition ID convention, e.g. "us.p00").
func mkOrgPolicies(t testing.TB, org string, n int, tag string) []policy.Policy {
	t.Helper()
	var src strings.Builder
	for i := 0; i < n; i++ {
		fmt.Fprintf(&src,
			"policy %s.p%02d priority %d:\n    on smoke-detected\n    when intensity > %d\n    do dispatch target %s category surveillance\n",
			org, i, i+1, i, tag)
	}
	pols, err := policylang.CompileSource(src.String(), policy.OriginHuman)
	if err != nil {
		t.Fatalf("compile fixture: %v", err)
	}
	return pols
}

// coalitionRing returns a two-org keyring with each key scoped to its
// own root.
func coalitionRing() *KeyRing {
	return NewKeyRing().
		Add(orgKey("us").ID, orgKey("us"), Scope{Org: "us"}).
		Add(orgKey("uk").ID, orgKey("uk"), Scope{Org: "uk"})
}

func TestScopeAllows(t *testing.T) {
	unrestricted := Scope{}
	if unrestricted.Restricted() {
		t.Error("zero Scope claims to be restricted")
	}
	if !unrestricted.Allows("anything.at.all") {
		t.Error("unrestricted scope refused an ID")
	}
	org := Scope{Org: "us"}
	if !org.Restricted() || !org.Allows("us.patrol") || org.Allows("uk.patrol") || org.Allows("usx.patrol") {
		t.Errorf("org scope misjudged: us.patrol=%v uk.patrol=%v usx.patrol=%v",
			org.Allows("us.patrol"), org.Allows("uk.patrol"), org.Allows("usx.patrol"))
	}
	pfx := Scope{Org: "us", Prefixes: []string{"shared.", "us."}}
	if !pfx.Allows("shared.alert") || !pfx.Allows("us.patrol") || pfx.Allows("uk.patrol") {
		t.Error("explicit prefixes misjudged")
	}
}

func TestKeyRingVerifyAndScope(t *testing.T) {
	ring := coalitionRing()
	pub := NewOrgPublisher(orgKey("us"), "us")
	full, _, err := pub.Publish(mkOrgPolicies(t, "us", 2, "r1"))
	if err != nil {
		t.Fatalf("Publish: %v", err)
	}
	if !full.CheckSig(ring) {
		t.Error("ring refused a signature from a held key")
	}
	if unknown := (Bundle{Manifest: full.Manifest, Records: full.Records, KeyID: "nobody", Sig: full.Sig}); unknown.CheckSig(ring) {
		t.Error("ring verified an unknown key ID")
	}
	if sc, ok := ring.ScopeOf(orgKey("uk").ID); !ok || sc.Org != "uk" {
		t.Errorf("ScopeOf(uk-root) = %+v, %v", sc, ok)
	}
	if _, ok := ring.ScopeOf("nobody"); ok {
		t.Error("ScopeOf reported an unknown key")
	}
	if got := ring.KeyIDs(); len(got) != 2 || got[0] != "uk-root" || got[1] != "us-root" {
		t.Errorf("KeyIDs = %v", got)
	}
}

// The scope invariant as a property: a bundle signed by org A's key
// that names any org-B policy — as a carried record, a coverage entry,
// or a removal — is always refused with ErrScope, wherever the foreign
// ID is injected. The manifest is re-rooted and re-signed each time,
// so only the scope check can catch it.
func TestScopePropertyCrossOrgRecordAlwaysRefused(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	usPols := mkOrgPolicies(t, "us", 4, "r1")
	ukPols := mkOrgPolicies(t, "uk", 4, "foreign")

	for trial := 0; trial < 200; trial++ {
		pub := NewOrgPublisher(orgKey("us"), "us")
		full, _, err := pub.Publish(usPols)
		if err != nil {
			t.Fatalf("Publish: %v", err)
		}
		// Pick a foreign policy and an injection site at random.
		fp := ukPols[rng.Intn(len(ukPols))]
		src, err := policylang.Format(fp)
		if err != nil {
			t.Fatalf("Format: %v", err)
		}
		rec := Record{ID: fp.ID, Source: src, Hash: HashSource(src)}
		b := full
		b.Records = append([]Record(nil), full.Records...)
		cov := make(map[string]string, len(full.Manifest.Coverage)+1)
		for id, h := range full.Manifest.Coverage {
			cov[id] = h
		}
		b.Manifest.Coverage = cov
		switch rng.Intn(3) {
		case 0: // carried record + coverage (the consistent smuggle)
			b.Records = append(b.Records, rec)
			cov[rec.ID] = rec.Hash
		case 1: // coverage entry only
			cov[rec.ID] = rec.Hash
		case 2: // removal of a foreign ID
			b.Manifest.Removed = append([]string(nil), b.Manifest.Removed...)
			b.Manifest.Removed = append(b.Manifest.Removed, fp.ID)
		}
		// Re-root and re-sign with the (compromised) org-A key, so the
		// bundle is otherwise fully valid.
		b.Manifest.Root = ComputeRoot(b.Manifest)
		b.SignWith(orgKey("us"))

		set := policy.NewSet()
		agent := NewOrgAgent(set, coalitionRing(), "us")
		applied, err := agent.Apply(b)
		if applied || !errors.Is(err, ErrScope) {
			t.Fatalf("trial %d: applied=%v err=%v, want ErrScope refusal", trial, applied, err)
		}
		if set.Len() != 0 || set.Revision() != 0 {
			t.Fatalf("trial %d: scope refusal mutated the set (%d policies, rev %d)", trial, set.Len(), set.Revision())
		}
		if CauseOf(err) != "scope" {
			t.Fatalf("trial %d: cause %q, want scope", trial, CauseOf(err))
		}
	}
}

// A manifest claiming org B's root but signed with org A's key is
// refused with ErrScope even when the signature itself verifies — and
// independently, an org-bound agent refuses foreign streams outright.
func TestScopeOrgBindingRefusals(t *testing.T) {
	pub := NewOrgPublisher(orgKey("us"), "us")
	full, _, err := pub.Publish(mkOrgPolicies(t, "us", 2, "r1"))
	if err != nil {
		t.Fatalf("Publish: %v", err)
	}

	// Key scope vs claimed org: us key signing a "uk" manifest.
	cross := full
	cross.Manifest.Org = "uk"
	cross.Manifest.Root = ComputeRoot(cross.Manifest)
	cross.SignWith(orgKey("us"))
	agent := NewAgent(policy.NewSet(), coalitionRing())
	if applied, err := agent.Apply(cross); applied || !errors.Is(err, ErrScope) {
		t.Errorf("cross-org manifest: applied=%v err=%v, want ErrScope", applied, err)
	}

	// Agent org binding: a uk-bound agent refuses the us stream even
	// under an unrestricted verifier.
	bound := NewOrgAgent(policy.NewSet(), orgKey("us"), "uk")
	if applied, err := bound.Apply(full); applied || !errors.Is(err, ErrScope) {
		t.Errorf("bound agent: applied=%v err=%v, want ErrScope", applied, err)
	}
	if bound.Org() != "uk" {
		t.Errorf("Org() = %q", bound.Org())
	}
}

// Two org roots activate independent revision streams on one shared
// policy set: each stream is monotonic on its own counter and the
// combined set holds both orgs' policies.
func TestAgentsTwoRootsOneSet(t *testing.T) {
	set := policy.NewSet()
	ring := coalitionRing()
	usAgent := NewOrgAgent(set, ring, "us")
	ukAgent := NewOrgAgent(set, ring, "uk")
	usPub := NewOrgPublisher(orgKey("us"), "us")
	ukPub := NewOrgPublisher(orgKey("uk"), "uk")

	usFull, _, err := usPub.Publish(mkOrgPolicies(t, "us", 2, "r1"))
	if err != nil {
		t.Fatal(err)
	}
	if applied, err := usAgent.Apply(usFull); !applied || err != nil {
		t.Fatalf("us apply: %v %v", applied, err)
	}
	for rev := 1; rev <= 2; rev++ {
		ukFull, _, err := ukPub.Publish(mkOrgPolicies(t, "uk", 3, fmt.Sprintf("r%d", rev)))
		if err != nil {
			t.Fatal(err)
		}
		if applied, err := ukAgent.Apply(ukFull); !applied || err != nil {
			t.Fatalf("uk apply r%d: %v %v", rev, applied, err)
		}
	}
	if got := set.OrgRevision("us"); got != 1 {
		t.Errorf("us stream at %d, want 1", got)
	}
	if got := set.OrgRevision("uk"); got != 2 {
		t.Errorf("uk stream at %d, want 2", got)
	}
	if set.Len() != 5 {
		t.Errorf("set holds %d policies, want 5 (2 us + 3 uk)", set.Len())
	}
	revs := set.OrgRevisions()
	if revs["us"] != 1 || revs["uk"] != 2 {
		t.Errorf("OrgRevisions = %v", revs)
	}
}
