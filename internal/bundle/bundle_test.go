package bundle

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"repro/internal/policy"
	"repro/internal/policylang"
)

func testKey() HMACKey {
	return HMACKey{ID: "fleet-key-1", Secret: []byte("correct horse battery staple")}
}

// mkPolicies compiles n distinct policies whose action target encodes
// tag, so tests can tell revisions apart by content.
func mkPolicies(t testing.TB, n int, tag string) []policy.Policy {
	t.Helper()
	var src strings.Builder
	for i := 0; i < n; i++ {
		fmt.Fprintf(&src,
			"policy p%02d priority %d:\n    on smoke-detected\n    when intensity > %d\n    do dispatch target %s category surveillance\n",
			i, i+1, i, tag)
	}
	pols, err := policylang.CompileSource(src.String(), policy.OriginHuman)
	if err != nil {
		t.Fatalf("compile fixture: %v", err)
	}
	return pols
}

func TestPublishFullRoundTrip(t *testing.T) {
	pub := NewPublisher(testKey())
	full, delta, err := pub.Publish(mkPolicies(t, 5, "rev1"))
	if err != nil {
		t.Fatalf("Publish: %v", err)
	}
	if full.Kind() != KindFull || delta.Kind() != KindFull {
		// The first revision's "delta" has base 0, i.e. it is a full.
		t.Fatalf("first revision kinds: full=%s delta=%s", full.Kind(), delta.Kind())
	}
	set := policy.NewSet()
	agent := NewAgent(set, testKey())
	applied, err := agent.Apply(full)
	if err != nil || !applied {
		t.Fatalf("Apply full: applied=%v err=%v", applied, err)
	}
	if set.Len() != 5 {
		t.Fatalf("set has %d policies, want 5", set.Len())
	}
	if got := agent.Revision(); got != 1 {
		t.Fatalf("agent revision %d, want 1", got)
	}
	if got := set.Snapshot().Revision(); got != 1 {
		t.Fatalf("snapshot revision %d, want 1", got)
	}
	// Re-delivery of the active revision is a benign no-op.
	applied, err = agent.Apply(full)
	if err != nil || applied {
		t.Fatalf("re-apply: applied=%v err=%v, want false,nil", applied, err)
	}
}

func TestDeltaApplySmallerThanFull(t *testing.T) {
	pub := NewPublisher(testKey())
	full1, _, err := pub.Publish(mkPolicies(t, 12, "rev1"))
	if err != nil {
		t.Fatalf("Publish rev1: %v", err)
	}
	set := policy.NewSet()
	agent := NewAgent(set, testKey())
	if _, err := agent.Apply(full1); err != nil {
		t.Fatalf("Apply rev1: %v", err)
	}

	// Rev 2: change one policy, drop one, keep the rest.
	next := mkPolicies(t, 12, "rev1")
	changed := mkPolicies(t, 1, "rev2")[0]
	next[0] = changed
	next = next[:11] // drop p11
	full2, delta2, err := pub.Publish(next)
	if err != nil {
		t.Fatalf("Publish rev2: %v", err)
	}
	if delta2.Kind() != KindDelta {
		t.Fatalf("rev2 delta kind %s", delta2.Kind())
	}
	if len(delta2.Records) != 1 || delta2.Records[0].ID != "p00" {
		t.Fatalf("delta records %+v, want just p00", delta2.Records)
	}
	if len(delta2.Manifest.Removed) != 1 || delta2.Manifest.Removed[0] != "p11" {
		t.Fatalf("delta removed %v, want [p11]", delta2.Manifest.Removed)
	}
	fullBytes, _ := Encode(full2)
	deltaBytes, _ := Encode(delta2)
	if len(deltaBytes) >= len(fullBytes) {
		t.Fatalf("delta (%d B) not smaller than full (%d B)", len(deltaBytes), len(fullBytes))
	}
	applied, err := agent.Apply(delta2)
	if err != nil || !applied {
		t.Fatalf("Apply delta: applied=%v err=%v", applied, err)
	}
	if set.Len() != 11 {
		t.Fatalf("set has %d policies, want 11", set.Len())
	}
	if _, ok := set.Get("p11"); ok {
		t.Fatal("p11 survived its removal")
	}
	p0, _ := set.Get("p00")
	if p0.Action.Target != "rev2" {
		t.Fatalf("p00 target %q, want rev2", p0.Action.Target)
	}
}

func TestDeltaFromHistoryAndEviction(t *testing.T) {
	pub := NewPublisher(testKey())
	for i := 0; i < historyDepth+4; i++ {
		if _, _, err := pub.Publish(mkPolicies(t, 3, fmt.Sprintf("rev%d", i+1))); err != nil {
			t.Fatalf("Publish %d: %v", i+1, err)
		}
	}
	if _, ok := pub.DeltaFrom(1); ok {
		t.Fatal("DeltaFrom(1) succeeded after eviction")
	}
	cur := pub.Revision()
	d, ok := pub.DeltaFrom(cur - 1)
	if !ok {
		t.Fatalf("DeltaFrom(%d) failed", cur-1)
	}
	if d.Manifest.Base != cur-1 || d.Manifest.Revision != cur {
		t.Fatalf("delta %d->%d, want %d->%d", d.Manifest.Base, d.Manifest.Revision, cur-1, cur)
	}
	if _, ok := pub.DeltaFrom(cur); ok {
		t.Fatal("DeltaFrom(current) should fail (nothing to patch)")
	}
}

// TestFailClosed corrupts a bundle every way the verifier must catch.
// Tampering that would break the signature is re-signed with the
// legitimate key, simulating a compromised co-holder of an HMAC secret:
// the later checks are the defense in depth that still refuses the
// bundle.
func TestFailClosed(t *testing.T) {
	key := testKey()

	setup := func(t *testing.T) (*policy.Set, *Agent, Bundle, Bundle) {
		pub := NewPublisher(key)
		full1, _, err := pub.Publish(mkPolicies(t, 4, "rev1"))
		if err != nil {
			t.Fatalf("Publish rev1: %v", err)
		}
		_, delta2, err := pub.Publish(mkPolicies(t, 4, "rev2"))
		if err != nil {
			t.Fatalf("Publish rev2: %v", err)
		}
		set := policy.NewSet()
		agent := NewAgent(set, key)
		if _, err := agent.Apply(full1); err != nil {
			t.Fatalf("baseline apply: %v", err)
		}
		return set, agent, full1, delta2
	}

	cases := []struct {
		name    string
		corrupt func(t *testing.T, full1, delta2 Bundle) Bundle
		cause   string
	}{
		{
			name: "flipped signature",
			corrupt: func(t *testing.T, _, delta2 Bundle) Bundle {
				delta2.Sig = strings.Repeat("00", 32)
				return delta2
			},
			cause: "signature",
		},
		{
			name: "foreign key",
			corrupt: func(t *testing.T, _, delta2 Bundle) Bundle {
				delta2.SignWith(HMACKey{ID: "rogue", Secret: []byte("rogue")})
				return delta2
			},
			cause: "signature",
		},
		{
			name: "tampered coverage, stale root",
			corrupt: func(t *testing.T, _, delta2 Bundle) Bundle {
				delta2.Manifest.Coverage["p00"] = strings.Repeat("ab", 32)
				delta2.SignWith(testKey())
				return delta2
			},
			cause: "root",
		},
		{
			name: "rollback to older revision",
			corrupt: func(t *testing.T, full1, _ Bundle) Bundle {
				shadow := full1
				shadow.Manifest.Revision = 0 // below the active revision
				shadow.Manifest.Root = ComputeRoot(shadow.Manifest)
				shadow.SignWith(testKey())
				return shadow
			},
			cause: "stale",
		},
		{
			name: "delta chain gap",
			corrupt: func(t *testing.T, _, delta2 Bundle) Bundle {
				delta2.Manifest.Base = 7
				delta2.Manifest.Revision = 8
				delta2.Manifest.Root = ComputeRoot(delta2.Manifest)
				delta2.SignWith(testKey())
				return delta2
			},
			cause: "gap",
		},
		{
			name: "tampered record source",
			corrupt: func(t *testing.T, _, delta2 Bundle) Bundle {
				delta2.Records[0].Source += " "
				delta2.SignWith(testKey())
				return delta2
			},
			cause: "hash",
		},
		{
			name: "incomplete full bundle",
			corrupt: func(t *testing.T, full1, _ Bundle) Bundle {
				shadow := full1
				shadow.Manifest.Revision = 2
				shadow.Manifest.Root = ComputeRoot(shadow.Manifest)
				shadow.Records = shadow.Records[:len(shadow.Records)-1]
				shadow.SignWith(testKey())
				return shadow
			},
			cause: "coverage",
		},
		{
			name: "uncompilable record",
			corrupt: func(t *testing.T, _, delta2 Bundle) Bundle {
				delta2.Records[0].Source = "policy p00 oops"
				delta2.Records[0].Hash = HashSource(delta2.Records[0].Source)
				delta2.Manifest.Coverage["p00"] = delta2.Records[0].Hash
				delta2.Manifest.Root = ComputeRoot(delta2.Manifest)
				delta2.SignWith(testKey())
				return delta2
			},
			cause: "malformed",
		},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			set, agent, full1, delta2 := setup(t)
			before := set.Snapshot()
			bad := tc.corrupt(t, full1, delta2)
			applied, err := agent.Apply(bad)
			if applied || err == nil {
				t.Fatalf("corrupted bundle applied=%v err=%v", applied, err)
			}
			if got := CauseOf(err); got != tc.cause {
				t.Fatalf("cause %q (err %v), want %q", got, err, tc.cause)
			}
			if agent.Revision() != 1 {
				t.Fatalf("agent moved to revision %d after rejection", agent.Revision())
			}
			after := set.Snapshot()
			if after.Revision() != before.Revision() || set.Len() != 4 {
				t.Fatalf("live state changed after rejection: rev %d->%d len %d",
					before.Revision(), after.Revision(), set.Len())
			}
			for _, id := range []string{"p00", "p01", "p02", "p03"} {
				p, ok := set.Get(id)
				if !ok || p.Action.Target != "rev1" {
					t.Fatalf("policy %s disturbed after rejection: ok=%v target=%q", id, ok, p.Action.Target)
				}
			}
		})
	}
}

func TestDecodeErrors(t *testing.T) {
	set := policy.NewSet()
	agent := NewAgent(set, testKey())
	applied, err := agent.ApplyWire([]byte("{not json"))
	if applied || !errors.Is(err, ErrDecode) {
		t.Fatalf("ApplyWire garbage: applied=%v err=%v", applied, err)
	}
	if CauseOf(err) != "decode" {
		t.Fatalf("cause %q, want decode", CauseOf(err))
	}
}

func TestEd25519RoundTrip(t *testing.T) {
	seed := []byte("0123456789abcdef0123456789abcdef")
	signer := NewEd25519Signer("asym-1", seed)
	pub := NewPublisher(signer)
	full, _, err := pub.Publish(mkPolicies(t, 3, "rev1"))
	if err != nil {
		t.Fatalf("Publish: %v", err)
	}
	agent := NewAgent(policy.NewSet(), signer.PublicVerifier())
	if applied, err := agent.Apply(full); err != nil || !applied {
		t.Fatalf("Apply under ed25519: applied=%v err=%v", applied, err)
	}
	// A verifier for a different keypair refuses the same bundle.
	other := NewEd25519Signer("asym-1", []byte("ffffffffffffffffffffffffffffffff"))
	stranger := NewAgent(policy.NewSet(), other.PublicVerifier())
	if applied, err := stranger.Apply(full); applied || CauseOf(err) != "signature" {
		t.Fatalf("foreign ed25519 key: applied=%v err=%v", applied, err)
	}
}

func TestWireRoundTrip(t *testing.T) {
	pub := NewPublisher(testKey())
	full, _, err := pub.Publish(mkPolicies(t, 3, "rev1"))
	if err != nil {
		t.Fatalf("Publish: %v", err)
	}
	data, err := Encode(full)
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	agent := NewAgent(policy.NewSet(), testKey())
	if applied, err := agent.ApplyWire(data); err != nil || !applied {
		t.Fatalf("ApplyWire: applied=%v err=%v", applied, err)
	}
}
