package bundle

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/policy"
	"repro/internal/policylang"
)

// Verification failure causes, one typed error per rejected{cause}
// label. Every path that refuses a bundle wraps exactly one of these so
// telemetry and audit agree on why.
var (
	ErrSignature = errors.New("bundle: signature verification failed")
	ErrRoot      = errors.New("bundle: manifest root hash mismatch")
	ErrScope     = errors.New("bundle: records outside signing key scope")
	ErrStale     = errors.New("bundle: revision not newer than active")
	ErrGap       = errors.New("bundle: delta base does not match active revision")
	ErrHash      = errors.New("bundle: record content hash mismatch")
	ErrCoverage  = errors.New("bundle: coverage map does not describe resulting set")
	ErrMalformed = errors.New("bundle: malformed contents")
)

// CauseOf maps a rejection error to its rejected{cause} label.
func CauseOf(err error) string {
	switch {
	case errors.Is(err, ErrSignature):
		return "signature"
	case errors.Is(err, ErrScope):
		return "scope"
	case errors.Is(err, ErrRoot):
		return "root"
	case errors.Is(err, ErrStale):
		return "stale"
	case errors.Is(err, ErrGap):
		return "gap"
	case errors.Is(err, ErrHash):
		return "hash"
	case errors.Is(err, ErrCoverage):
		return "coverage"
	case errors.Is(err, ErrDecode):
		return "decode"
	default:
		return "malformed"
	}
}

// Agent is the device-side half of the distribution plane: it verifies
// bundles end to end and only then activates them atomically on the
// device's policy set. Verification never touches live state — every
// check runs against the wire contents and the agent's own bookkeeping,
// and the single mutation is Set.ApplyRevision's one-lock install, so a
// defect at any stage leaves the device exactly on its previous
// verified revision.
type Agent struct {
	mu       sync.Mutex
	set      *policy.Set
	verifier Verifier
	org      string
	rev      uint64
	coverage map[string]string
}

// NewAgent wires an agent to the device's policy set and trust root.
// The agent is unbound: it accepts any org's revision stream its
// verifier can vouch for (the single-root deployment).
func NewAgent(set *policy.Set, v Verifier) *Agent {
	return &Agent{set: set, verifier: v, coverage: map[string]string{}}
}

// NewOrgAgent wires an agent bound to one organization's bundle root:
// a bundle whose manifest claims a different org is refused with
// ErrScope before anything else about it is believed. A multi-root
// device runs one agent per subscribed root, all sharing the policy
// set — each root is an independent revision stream, and each agent's
// coverage bookkeeping confines full-bundle removals to its own root.
func NewOrgAgent(set *policy.Set, v Verifier, org string) *Agent {
	return &Agent{set: set, verifier: v, org: org, coverage: map[string]string{}}
}

// Org returns the root the agent is bound to ("" = unbound).
func (a *Agent) Org() string { return a.org }

// Revision returns the last revision the agent activated.
func (a *Agent) Revision() uint64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.rev
}

// ApplyWire decodes and applies wire bytes.
func (a *Agent) ApplyWire(data []byte) (bool, error) {
	b, err := Decode(data)
	if err != nil {
		return false, err
	}
	return a.Apply(b)
}

// Apply verifies the bundle and, if every check passes, activates its
// revision atomically. The fail-closed ordering is fixed: signature,
// root, key scope, staleness, delta-chain continuity, per-record
// content hashes and compilation, full-coverage equality — and only
// then the live swap. applied reports whether the device moved to a new revision; a
// re-delivered current revision is a benign no-op (false, nil) so
// repair re-pushes converge without noise.
func (a *Agent) Apply(b Bundle) (applied bool, err error) {
	a.mu.Lock()
	defer a.mu.Unlock()

	// 1. Signature: nothing else is even read until the bytes are
	// proven to come from the control plane.
	if !b.CheckSig(a.verifier) {
		return false, fmt.Errorf("%w (key %q)", ErrSignature, b.KeyID)
	}
	// 2. Root: the manifest must be internally consistent.
	if b.Manifest.Root == "" || ComputeRoot(b.Manifest) != b.Manifest.Root {
		return false, ErrRoot
	}
	// 3. Scope: who signed decides what may be signed. An agent bound
	// to an org refuses other orgs' streams outright, and a scoped
	// verifier confines the signing key to its authorized coverage —
	// a validly signed bundle naming a foreign org's policies (the
	// compromised-coalition-key attack) dies here, before staleness or
	// contents are even considered.
	if a.org != "" && b.Manifest.Org != a.org {
		return false, fmt.Errorf("%w: bundle for org %q at agent bound to %q", ErrScope, b.Manifest.Org, a.org)
	}
	if sv, ok := a.verifier.(ScopedVerifier); ok {
		if scope, known := sv.ScopeOf(b.KeyID); known && scope.Restricted() {
			if err := checkScope(scope, b); err != nil {
				return false, err
			}
		}
	}
	// 4. Staleness: re-delivery of the active revision is a no-op;
	// anything older is a rollback and is refused.
	if b.Manifest.Revision == a.rev {
		return false, nil
	}
	if b.Manifest.Revision < a.rev {
		return false, fmt.Errorf("%w: got %d, active %d", ErrStale, b.Manifest.Revision, a.rev)
	}
	// 5. Delta-chain continuity: a delta only applies to the exact
	// base it was cut against.
	if b.Kind() == KindDelta && b.Manifest.Base != a.rev {
		return false, fmt.Errorf("%w: delta base %d, active %d", ErrGap, b.Manifest.Base, a.rev)
	}
	if len(b.Manifest.Coverage) == 0 && len(b.Records) > 0 {
		return false, fmt.Errorf("%w: records without coverage", ErrMalformed)
	}

	// 6. Records: every carried policy must hash to its claimed
	// content hash, compile to exactly one policy, and keep its ID.
	upserts := make([]policy.Policy, 0, len(b.Records))
	seen := make(map[string]bool, len(b.Records))
	for _, rec := range b.Records {
		if rec.ID == "" || seen[rec.ID] {
			return false, fmt.Errorf("%w: empty or duplicate record ID %q", ErrMalformed, rec.ID)
		}
		seen[rec.ID] = true
		if HashSource(rec.Source) != rec.Hash {
			return false, fmt.Errorf("%w: record %s", ErrHash, rec.ID)
		}
		pols, cerr := policylang.CompileSource(rec.Source, policy.OriginShared)
		if cerr != nil {
			return false, fmt.Errorf("%w: record %s: %v", ErrMalformed, rec.ID, cerr)
		}
		if len(pols) != 1 || pols[0].ID != rec.ID {
			return false, fmt.Errorf("%w: record %s does not compile to exactly that policy", ErrMalformed, rec.ID)
		}
		upserts = append(upserts, pols[0])
	}

	// 7. Coverage: simulate the apply against the agent's bookkeeping
	// and require the result to equal the manifest's coverage map
	// exactly — nothing missing, nothing extra, every hash agreeing.
	next := make(map[string]string, len(b.Manifest.Coverage))
	if b.Kind() == KindDelta {
		for id, h := range a.coverage {
			next[id] = h
		}
	}
	var removals []string
	for _, id := range b.Manifest.Removed {
		if _, ok := next[id]; !ok {
			return false, fmt.Errorf("%w: removal of unknown policy %s", ErrCoverage, id)
		}
		delete(next, id)
		removals = append(removals, id)
	}
	for _, rec := range b.Records {
		next[rec.ID] = rec.Hash
	}
	if b.Kind() == KindFull {
		// A full bundle replaces everything: policies the device holds
		// but the bundle omits are removed by the swap.
		for cur := range a.coverage {
			if _, ok := next[cur]; !ok {
				removals = append(removals, cur)
			}
		}
	}
	if len(next) != len(b.Manifest.Coverage) {
		return false, fmt.Errorf("%w: resulting set has %d policies, manifest covers %d", ErrCoverage, len(next), len(b.Manifest.Coverage))
	}
	for pid, h := range b.Manifest.Coverage {
		if next[pid] != h {
			return false, fmt.Errorf("%w: policy %s", ErrCoverage, pid)
		}
	}

	// 8. Activation: one atomic install — a concurrent Evaluate sees
	// either the old revision or the new one, never a mixture.
	if aerr := a.set.ApplyOrgRevision(b.Manifest.Org, b.Manifest.Revision, upserts, removals); aerr != nil {
		return false, fmt.Errorf("%w: %v", ErrMalformed, aerr)
	}
	a.rev = b.Manifest.Revision
	a.coverage = next
	return true, nil
}
