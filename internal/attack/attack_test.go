package attack

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"repro/internal/device"
	"repro/internal/guard"
	"repro/internal/policy"
	"repro/internal/statespace"
)

func victim(t *testing.T, id string) *device.Device {
	t.Helper()
	s, err := statespace.NewSchema(statespace.Var("x", 0, 100))
	if err != nil {
		t.Fatalf("NewSchema: %v", err)
	}
	d, err := device.New(device.Config{
		ID:      id,
		Initial: s.Origin(),
		Guard:   guard.AllowAll{},
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return d
}

func maliciousPayload() []policy.Policy {
	return []policy.Policy{{
		ID: "kill-all-humans", EventType: "*", Modality: policy.ModalityDo,
		Priority: 100,
		Action:   policy.Action{Name: "strike", Category: "kinetic-action"},
	}}
}

func TestReprogramInstallsPayloadAndStripsGuard(t *testing.T) {
	d := victim(t, "v1")
	r := Reprogram{Payload: maliciousPayload(), DisableGuard: true}
	if err := r.Infect(d); err != nil {
		t.Fatalf("Infect: %v", err)
	}
	if _, ok := d.Policies().Get("kill-all-humans"); !ok {
		t.Error("payload not installed")
	}
	// Guard removed: the malicious action executes unchecked.
	execs, err := d.HandleEvent(policy.Event{Type: "anything"})
	if err != nil {
		t.Fatalf("HandleEvent: %v", err)
	}
	if len(execs) != 1 || !execs[0].Executed() {
		t.Errorf("execs = %+v", execs)
	}
	if err := (Reprogram{}).Infect(nil); err == nil {
		t.Error("nil target accepted")
	}
}

func TestReprogramRejectsInvalidPayload(t *testing.T) {
	d := victim(t, "v1")
	r := Reprogram{Payload: []policy.Policy{{}}}
	if err := r.Infect(d); err == nil {
		t.Error("invalid payload accepted")
	}
}

func TestWormSpreadAllVulnerable(t *testing.T) {
	seed := victim(t, "seed")
	var peers []Target
	for i := 0; i < 5; i++ {
		peers = append(peers, victim(t, fmt.Sprintf("p%d", i)))
	}
	w := Worm{Attack: Reprogram{Payload: maliciousPayload()}, VulnProb: 1}
	infected, err := w.Spread(seed, peers, 3)
	if err != nil {
		t.Fatalf("Spread: %v", err)
	}
	if len(infected) != 6 {
		t.Errorf("infected = %v", infected)
	}
}

func TestWormSpreadNoVulnerability(t *testing.T) {
	seed := victim(t, "seed")
	peers := []Target{victim(t, "p0")}
	w := Worm{Attack: Reprogram{Payload: maliciousPayload()}, VulnProb: 0}
	infected, err := w.Spread(seed, peers, 10)
	if err != nil {
		t.Fatalf("Spread: %v", err)
	}
	if len(infected) != 1 || infected[0] != "seed" {
		t.Errorf("infected = %v", infected)
	}
	if _, err := w.Spread(nil, peers, 1); err == nil {
		t.Error("nil seed accepted")
	}
}

func TestWormSpreadPartialVulnerability(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	w := Worm{Attack: Reprogram{Payload: maliciousPayload()}, VulnProb: 0.5, Rand: rng}
	totals := 0
	const trials = 50
	for trial := 0; trial < trials; trial++ {
		seed := victim(t, "seed")
		var peers []Target
		for i := 0; i < 10; i++ {
			peers = append(peers, victim(t, fmt.Sprintf("p%d", i)))
		}
		infected, err := w.Spread(seed, peers, 1)
		if err != nil {
			t.Fatalf("Spread: %v", err)
		}
		totals += len(infected) - 1
	}
	mean := float64(totals) / trials
	if mean < 4 || mean > 6 {
		t.Errorf("mean infections per round = %.2f, want ≈5", mean)
	}
	// Nil Rand with fractional probability fails safe (no spread).
	silent := Worm{Attack: Reprogram{}, VulnProb: 0.5}
	infected, err := silent.Spread(victim(t, "s"), []Target{victim(t, "p")}, 3)
	if err != nil || len(infected) != 1 {
		t.Errorf("nil-rand worm spread: %v, %v", infected, err)
	}
}

func TestBackdoor(t *testing.T) {
	accesses := 0
	successes := 0
	b := NewBackdoor("hunter2", func(ok bool) {
		accesses++
		if ok {
			successes++
		}
	})
	if b.Try("wrong") {
		t.Error("wrong credential accepted")
	}
	if !b.Try("hunter2") {
		t.Error("correct credential rejected")
	}
	ok, attempts := DictionaryExploit(b, []string{"123", "password", "hunter2", "zzz"})
	if !ok || attempts != 3 {
		t.Errorf("exploit = %v after %d attempts", ok, attempts)
	}
	if accesses != 5 || successes != 2 {
		t.Errorf("accesses = %d successes = %d", accesses, successes)
	}
	ok, attempts = DictionaryExploit(b, []string{"a", "b"})
	if ok || attempts != 2 {
		t.Errorf("failed exploit = %v,%d", ok, attempts)
	}
}

func TestRobustAggregateResistsCollusion(t *testing.T) {
	// 7 honest sensors around 20, 3 colluders reporting 90.
	readings := []float64{19, 20, 21, 20, 19.5, 20.5, 20, 90, 90, 90}
	robust, trust := RobustAggregate(readings, 10)
	plain := PlainMean(readings)

	if math.Abs(robust-20) > 1 {
		t.Errorf("robust = %.3f, want ≈20", robust)
	}
	if math.Abs(plain-20) < 10 {
		t.Errorf("plain mean = %.3f should be dragged toward 90", plain)
	}
	// Colluders get far less trust than honest sensors.
	honestTrust := trust[0]
	colluderTrust := trust[7]
	if colluderTrust*100 > honestTrust {
		t.Errorf("colluder trust %.6f not suppressed vs honest %.6f", colluderTrust, honestTrust)
	}
	sum := 0.0
	for _, w := range trust {
		sum += w
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("trust weights sum = %g", sum)
	}
}

func TestRobustAggregateEdgeCases(t *testing.T) {
	if v, w := RobustAggregate(nil, 5); !math.IsNaN(v) || w != nil {
		t.Errorf("empty = %v,%v", v, w)
	}
	v, _ := RobustAggregate([]float64{7}, 0) // iterations clamped to ≥1
	if v != 7 {
		t.Errorf("single reading = %g", v)
	}
	if !math.IsNaN(PlainMean(nil)) {
		t.Error("PlainMean(nil) not NaN")
	}
}

func TestTrustReading(t *testing.T) {
	peers := []float64{20, 21, 19, 20, 90} // one deceptive peer
	if !TrustReading(20.5, peers, 3) {
		t.Error("honest reading rejected")
	}
	if TrustReading(90, peers, 3) {
		t.Error("deceived reading trusted")
	}
	if !TrustReading(42, nil, 1) {
		t.Error("no-peer reading should be trusted by default")
	}
}
