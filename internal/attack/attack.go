// Package attack implements the threat catalogue of Section IV as
// scripted injectors, plus the defenses the paper cites:
//
//   - Reprogram / Worm — "a reprogrammed device may turn malevolent and
//     convert other devices into following the same behaviors";
//   - Backdoor — the "common but perhaps misguided philosophy" of a
//     human shutdown backdoor that malware exploits instead;
//   - deception defense — RobustAggregate, the collusion-resistant
//     trust-weighted aggregation of ref [13] (Rezvani et al.), used by
//     the break-glass trust check to validate sensor readings against
//     peers.
//
// Training-data poisoning lives in package learning (Corruption);
// sensor deception lives in package device (DeceivedSensor). This
// package orchestrates them into whole-system attacks for the
// experiments.
package attack

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/guard"
	"repro/internal/policy"
)

// Target is the attack surface of a device: its mutable policy set and
// replaceable guard. *device.Device satisfies it.
type Target interface {
	ID() string
	Policies() *policy.Set
	SetGuard(g guard.Guard)
}

// Reprogram is a cyber attack that installs malicious policies on a
// device and optionally strips its guard.
type Reprogram struct {
	// Payload is installed (replacing same-ID policies).
	Payload []policy.Policy
	// DisableGuard removes the device's guard, bypassing "controls
	// that are put in place by humans".
	DisableGuard bool
}

// Infect applies the attack to one device.
func (r Reprogram) Infect(t Target) error {
	if t == nil {
		return errors.New("attack: nil target")
	}
	for _, p := range r.Payload {
		if err := t.Policies().Replace(p); err != nil {
			return fmt.Errorf("attack: installing %s on %s: %w", p.ID, t.ID(), err)
		}
	}
	if r.DisableGuard {
		t.SetGuard(nil)
	}
	return nil
}

// Worm spreads a Reprogram payload through a population: each round,
// every infected device contacts every peer, and vulnerable peers
// become infected — "nothing prevents an intelligent malevolent system
// to start hacking other devices on its own."
type Worm struct {
	// Attack is the payload delivered on infection.
	Attack Reprogram
	// VulnProb is the probability a contacted device is vulnerable.
	VulnProb float64
	// Rand drives vulnerability sampling (required for VulnProb in
	// (0,1)).
	Rand *rand.Rand
}

// Spread seeds the infection and runs the given number of contact
// rounds. It returns the infected device IDs, sorted. The seed itself
// counts as infected.
func (w Worm) Spread(seed Target, peers []Target, rounds int) ([]string, error) {
	if seed == nil {
		return nil, errors.New("attack: nil seed")
	}
	if err := w.Attack.Infect(seed); err != nil {
		return nil, err
	}
	infected := map[string]bool{seed.ID(): true}
	for round := 0; round < rounds; round++ {
		newly := make([]Target, 0)
		for _, p := range peers {
			if infected[p.ID()] {
				continue
			}
			if !w.vulnerable() {
				continue
			}
			if err := w.Attack.Infect(p); err != nil {
				return nil, err
			}
			newly = append(newly, p)
		}
		if len(newly) == 0 {
			break
		}
		for _, p := range newly {
			infected[p.ID()] = true
		}
	}
	ids := make([]string, 0, len(infected))
	for id := range infected {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids, nil
}

func (w Worm) vulnerable() bool {
	switch {
	case w.VulnProb >= 1:
		return true
	case w.VulnProb <= 0:
		return false
	case w.Rand == nil:
		return false
	default:
		return w.Rand.Float64() < w.VulnProb
	}
}

// Backdoor models the shutdown backdoor Section IV warns about: a
// fixed credential that opens privileged access. Every access —
// legitimate or not — invokes OnAccess, letting experiments count how
// often the "safety" mechanism was turned against the system.
type Backdoor struct {
	credential string
	// OnAccess fires with whether the access used the correct
	// credential.
	OnAccess func(success bool)
}

// NewBackdoor installs a backdoor with the given credential.
func NewBackdoor(credential string, onAccess func(bool)) *Backdoor {
	return &Backdoor{credential: credential, OnAccess: onAccess}
}

// Try attempts access with a credential.
func (b *Backdoor) Try(credential string) bool {
	ok := credential == b.credential
	if b.OnAccess != nil {
		b.OnAccess(ok)
	}
	return ok
}

// DictionaryExploit attempts access with each guess and reports
// whether any succeeded, plus the number of attempts used.
func DictionaryExploit(b *Backdoor, guesses []string) (bool, int) {
	for i, g := range guesses {
		if b.Try(g) {
			return true, i + 1
		}
	}
	return false, len(guesses)
}

// RobustAggregate computes a collusion-resistant estimate of a sensed
// quantity from peer readings using iterative trust-weighted
// refinement (after Rezvani et al., ref [13]): readings far from the
// consensus estimate lose trust, so a colluding minority reporting a
// fabricated value cannot drag the estimate far. It returns the
// estimate and the final per-reading trust weights (normalized to sum
// to 1). An empty input returns NaN.
func RobustAggregate(readings []float64, iterations int) (float64, []float64) {
	n := len(readings)
	if n == 0 {
		return math.NaN(), nil
	}
	if iterations < 1 {
		iterations = 1
	}
	weights := make([]float64, n)
	for i := range weights {
		weights[i] = 1.0 / float64(n)
	}
	estimate := weightedMean(readings, weights)
	const epsilon = 1e-6
	for iter := 0; iter < iterations; iter++ {
		total := 0.0
		for i, x := range readings {
			d := x - estimate
			weights[i] = 1 / (epsilon + d*d)
			total += weights[i]
		}
		for i := range weights {
			weights[i] /= total
		}
		estimate = weightedMean(readings, weights)
	}
	return estimate, weights
}

// PlainMean is the undefended baseline aggregator.
func PlainMean(readings []float64) float64 {
	if len(readings) == 0 {
		return math.NaN()
	}
	sum := 0.0
	for _, x := range readings {
		sum += x
	}
	return sum / float64(len(readings))
}

// TrustReading reports whether a device's own reading agrees with the
// robust aggregate of peer readings within tolerance — the
// break-glass TrustCheck implementation defending against sensor
// deception.
func TrustReading(own float64, peers []float64, tolerance float64) bool {
	if len(peers) == 0 {
		return true // nothing to cross-check against
	}
	estimate, _ := RobustAggregate(peers, 5)
	return math.Abs(own-estimate) <= tolerance
}

func weightedMean(xs, ws []float64) float64 {
	var sum, total float64
	for i, x := range xs {
		sum += ws[i] * x
		total += ws[i]
	}
	if total == 0 {
		return 0
	}
	return sum / total
}
