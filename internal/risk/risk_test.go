package risk

import (
	"math"
	"strings"
	"testing"

	"repro/internal/statespace"
)

func schema2(t *testing.T) *statespace.Schema {
	t.Helper()
	s, err := statespace.NewSchema(
		statespace.Var("heat", 0, 100),
		statespace.Var("progress", 0, 1),
	)
	if err != nil {
		t.Fatalf("NewSchema: %v", err)
	}
	return s
}

func TestNewCompositeValidation(t *testing.T) {
	ok := Factor{Name: "f", Weight: 1, Assess: AssessorFunc(func(statespace.State) float64 { return 0 })}
	tests := []struct {
		name   string
		factor Factor
	}{
		{name: "empty name", factor: Factor{Weight: 1, Assess: ok.Assess}},
		{name: "zero weight", factor: Factor{Name: "f", Assess: ok.Assess}},
		{name: "negative weight", factor: Factor{Name: "f", Weight: -1, Assess: ok.Assess}},
		{name: "nil assessor", factor: Factor{Name: "f", Weight: 1}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := NewComposite(tt.factor); err == nil {
				t.Error("invalid factor accepted")
			}
		})
	}
	if _, err := NewComposite(ok); err != nil {
		t.Errorf("valid factor rejected: %v", err)
	}
}

func TestCompositeRiskWeightedMean(t *testing.T) {
	s := schema2(t)
	c, err := NewComposite(
		VariableFactor("heat", 3, "heat", 0, 100),
		Factor{Name: "constant", Weight: 1, Assess: AssessorFunc(func(statespace.State) float64 { return 0.4 })},
	)
	if err != nil {
		t.Fatalf("NewComposite: %v", err)
	}
	st, _ := s.NewState(50, 0) // heat factor = 0.5
	want := (3*0.5 + 1*0.4) / 4
	if got := c.Risk(st); math.Abs(got-want) > 1e-12 {
		t.Errorf("Risk = %g, want %g", got, want)
	}
}

func TestCompositeClampsFactorOutputs(t *testing.T) {
	s := schema2(t)
	c, err := NewComposite(
		Factor{Name: "wild", Weight: 1, Assess: AssessorFunc(func(statespace.State) float64 { return 7 })},
	)
	if err != nil {
		t.Fatalf("NewComposite: %v", err)
	}
	if got := c.Risk(s.Origin()); got != 1 {
		t.Errorf("Risk = %g, want clamped 1", got)
	}
}

func TestCompositeZeroValue(t *testing.T) {
	s := schema2(t)
	var c Composite
	if got := c.Risk(s.Origin()); got != 0 {
		t.Errorf("zero Composite risk = %g, want 0", got)
	}
}

func TestBreakdownAndExplain(t *testing.T) {
	s := schema2(t)
	c, err := NewComposite(
		VariableFactor("heat", 2, "heat", 0, 100),
		VariableFactor("backwards", 1, "heat", 100, 0),
	)
	if err != nil {
		t.Fatalf("NewComposite: %v", err)
	}
	st, _ := s.NewState(25, 0)
	br := c.Breakdown(st)
	if len(br) != 2 {
		t.Fatalf("Breakdown len = %d", len(br))
	}
	if math.Abs(br[0].Risk-0.25) > 1e-12 {
		t.Errorf("heat factor = %g, want 0.25", br[0].Risk)
	}
	if math.Abs(br[1].Risk-0.75) > 1e-12 {
		t.Errorf("inverted factor = %g, want 0.75", br[1].Risk)
	}
	exp := c.Explain(st)
	if !strings.Contains(exp, "heat") || !strings.Contains(exp, "total=") {
		t.Errorf("Explain = %q", exp)
	}
}

func TestVariableFactorEdgeCases(t *testing.T) {
	s := schema2(t)
	missing := VariableFactor("m", 1, "nope", 0, 1)
	if got := missing.Assess.Risk(s.Origin()); got != 0 {
		t.Errorf("missing variable risk = %g, want 0", got)
	}
	degenerate := VariableFactor("d", 1, "heat", 5, 5)
	if got := degenerate.Assess.Risk(s.Origin()); got != 0 {
		t.Errorf("degenerate range risk = %g, want 0", got)
	}
}

func TestProximityFactor(t *testing.T) {
	s := schema2(t)
	m := statespace.SafenessFunc(func(st statespace.State) float64 { return 0.7 })
	f := ProximityFactor("prox", 1, m)
	if got := f.Assess.Risk(s.Origin()); math.Abs(got-0.3) > 1e-12 {
		t.Errorf("proximity risk = %g, want 0.3", got)
	}
}

func TestUtilityScoreAndRank(t *testing.T) {
	s := schema2(t)
	u := &Utility{
		Value: func(st statespace.State) float64 { return st.MustGet("progress") },
		Risk: AssessorFunc(func(st statespace.State) float64 {
			return st.MustGet("heat") / 100
		}),
		RiskAversion: 2,
	}
	lowRisk, _ := s.NewState(10, 0.5)  // 0.5 - 2*0.1 = 0.3
	highRisk, _ := s.NewState(90, 0.9) // 0.9 - 2*0.9 = -0.9
	if got := u.Score(lowRisk); math.Abs(got-0.3) > 1e-12 {
		t.Errorf("Score(lowRisk) = %g, want 0.3", got)
	}
	best, ok := u.Best([]statespace.State{highRisk, lowRisk})
	if !ok || !best.Equal(lowRisk) {
		t.Errorf("Best picked %v", best)
	}
	if _, ok := u.Best(nil); ok {
		t.Error("Best(nil) returned a state")
	}
}

func TestUtilityDefaults(t *testing.T) {
	s := schema2(t)
	var u Utility
	if got := u.Score(s.Origin()); got != 0 {
		t.Errorf("zero Utility score = %g, want 0", got)
	}
	u2 := Utility{Risk: AssessorFunc(func(statespace.State) float64 { return 0.5 })}
	if got := u2.Score(s.Origin()); math.Abs(got+0.5) > 1e-12 {
		t.Errorf("risk-only score = %g, want -0.5 (default aversion 1)", got)
	}
}

func TestUtilityRankDeterministicTies(t *testing.T) {
	s := schema2(t)
	var u Utility // all scores 0 → tie-break on String()
	a, _ := s.NewState(1, 0)
	b, _ := s.NewState(2, 0)
	first := u.Rank([]statespace.State{b, a})
	second := u.Rank([]statespace.State{a, b})
	for i := range first {
		if !first[i].Equal(second[i]) {
			t.Fatal("Rank is not deterministic under ties")
		}
	}
}

func TestExpectedRisk(t *testing.T) {
	s := schema2(t)
	a := AssessorFunc(func(st statespace.State) float64 { return st.MustGet("heat") / 100 })
	lo, _ := s.NewState(0, 0)
	hi, _ := s.NewState(100, 0)

	got := ExpectedRisk(a, []statespace.State{lo, hi}, []float64{0.75, 0.25})
	if math.Abs(got-0.25) > 1e-12 {
		t.Errorf("ExpectedRisk = %g, want 0.25", got)
	}
	if got := ExpectedRisk(a, nil, nil); !math.IsNaN(got) {
		t.Errorf("ExpectedRisk(empty) = %g, want NaN", got)
	}
	if got := ExpectedRisk(a, []statespace.State{lo}, []float64{0}); !math.IsNaN(got) {
		t.Errorf("ExpectedRisk(zero mass) = %g, want NaN", got)
	}
	if got := ExpectedRisk(a, []statespace.State{lo, hi}, []float64{1}); !math.IsNaN(got) {
		t.Errorf("ExpectedRisk(mismatched) = %g, want NaN", got)
	}
}
