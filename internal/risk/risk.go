// Package risk implements the risk-estimation techniques of
// Sections VI.B and VII: per-state risk assessment built from
// application-dependent risk factors, and utility functions that
// "augment the risk function with the value that is determined in
// satisfying the objective or goal that is given to the system".
package risk

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/statespace"
)

// Assessor estimates the risk of being in a state. Risk is
// conventionally in [0,1]; higher is riskier.
type Assessor interface {
	Risk(statespace.State) float64
}

// AssessorFunc adapts a function into an Assessor.
type AssessorFunc func(statespace.State) float64

var _ Assessor = AssessorFunc(nil)

// Risk invokes the function.
func (f AssessorFunc) Risk(st statespace.State) float64 { return f(st) }

// Factor is one application-dependent contribution to overall risk: a
// named assessor with a relative weight. Section VI.B: deployment
// "requires the device ... to incorporate application-dependent risk
// factors which may be very specialized not only for specific
// applications but also for specific situations and contexts."
type Factor struct {
	Name   string
	Weight float64
	Assess Assessor
}

// Composite combines weighted risk factors. The zero value reports
// zero risk everywhere.
type Composite struct {
	factors []Factor
}

var _ Assessor = (*Composite)(nil)

// NewComposite builds a composite assessor. Factors must have positive
// weights and non-nil assessors.
func NewComposite(factors ...Factor) (*Composite, error) {
	for _, f := range factors {
		if f.Name == "" {
			return nil, fmt.Errorf("risk: factor needs a name")
		}
		if f.Weight <= 0 {
			return nil, fmt.Errorf("risk: factor %q weight must be positive, got %g", f.Name, f.Weight)
		}
		if f.Assess == nil {
			return nil, fmt.Errorf("risk: factor %q has nil assessor", f.Name)
		}
	}
	c := &Composite{factors: make([]Factor, len(factors))}
	copy(c.factors, factors)
	return c, nil
}

// Risk returns the weighted mean of the factor risks, each clamped to
// [0,1].
func (c *Composite) Risk(st statespace.State) float64 {
	if len(c.factors) == 0 {
		return 0
	}
	var sum, weights float64
	for _, f := range c.factors {
		sum += f.Weight * clamp01(f.Assess.Risk(st))
		weights += f.Weight
	}
	return sum / weights
}

// Breakdown returns each factor's clamped risk contribution for a
// state, in registration order. It is intended for explanation and
// audit records.
func (c *Composite) Breakdown(st statespace.State) []FactorRisk {
	out := make([]FactorRisk, len(c.factors))
	for i, f := range c.factors {
		out[i] = FactorRisk{Name: f.Name, Weight: f.Weight, Risk: clamp01(f.Assess.Risk(st))}
	}
	return out
}

// FactorRisk is one line of a risk breakdown.
type FactorRisk struct {
	Name   string
	Weight float64
	Risk   float64
}

// String renders a breakdown line.
func (fr FactorRisk) String() string {
	return fmt.Sprintf("%s(w=%g)=%.3f", fr.Name, fr.Weight, fr.Risk)
}

// Explain renders the full breakdown for a state as one line.
func (c *Composite) Explain(st statespace.State) string {
	parts := make([]string, 0, len(c.factors)+1)
	for _, fr := range c.Breakdown(st) {
		parts = append(parts, fr.String())
	}
	parts = append(parts, fmt.Sprintf("total=%.3f", c.Risk(st)))
	return strings.Join(parts, " ")
}

// ProximityFactor builds a risk factor from a safeness metric:
// risk = 1 − safeness.
func ProximityFactor(name string, weight float64, m statespace.SafenessMetric) Factor {
	return Factor{
		Name:   name,
		Weight: weight,
		Assess: AssessorFunc(func(st statespace.State) float64 { return 1 - m.Safeness(st) }),
	}
}

// VariableFactor builds a risk factor that grows linearly as the named
// variable moves from lo (risk 0) to hi (risk 1). If lo > hi the
// direction inverts.
func VariableFactor(name string, weight float64, variable string, lo, hi float64) Factor {
	return Factor{
		Name:   name,
		Weight: weight,
		Assess: AssessorFunc(func(st statespace.State) float64 {
			v, err := st.Get(variable)
			if err != nil {
				return 0
			}
			if lo == hi {
				return 0
			}
			return clamp01((v - lo) / (hi - lo))
		}),
	}
}

// Utility scores candidate next-states as goal value minus weighted
// risk (Section VII: "the utility may augment the risk function with
// the value that is determined in satisfying the objective or goal").
type Utility struct {
	// Value scores mission/goal attainment of a state in [0,1].
	Value func(statespace.State) float64
	// Risk estimates the risk of the state.
	Risk Assessor
	// RiskAversion scales how strongly risk discounts value. Zero
	// means risk-neutral weighting of 1.
	RiskAversion float64
}

// Score returns value − aversion·risk for the state. Higher is better.
func (u *Utility) Score(st statespace.State) float64 {
	aversion := u.RiskAversion
	if aversion == 0 {
		aversion = 1
	}
	value := 0.0
	if u.Value != nil {
		value = clamp01(u.Value(st))
	}
	r := 0.0
	if u.Risk != nil {
		r = clamp01(u.Risk.Risk(st))
	}
	return value - aversion*r
}

// Rank orders candidate states by descending utility score,
// tie-breaking on the state's string form for determinism. It returns
// a new slice.
func (u *Utility) Rank(candidates []statespace.State) []statespace.State {
	out := make([]statespace.State, len(candidates))
	copy(out, candidates)
	sort.SliceStable(out, func(i, j int) bool {
		si, sj := u.Score(out[i]), u.Score(out[j])
		if si != sj {
			return si > sj
		}
		return out[i].String() < out[j].String()
	})
	return out
}

// Best returns the highest-utility candidate, or false if none.
func (u *Utility) Best(candidates []statespace.State) (statespace.State, bool) {
	if len(candidates) == 0 {
		return statespace.State{}, false
	}
	return u.Rank(candidates)[0], true
}

// ExpectedRisk estimates the risk of an uncertain transition: the
// probability-weighted risk over possible next states. Probabilities
// are normalized; an empty input yields NaN.
func ExpectedRisk(a Assessor, outcomes []statespace.State, probs []float64) float64 {
	if len(outcomes) == 0 || len(outcomes) != len(probs) {
		return math.NaN()
	}
	var total, sum float64
	for i, st := range outcomes {
		p := math.Max(0, probs[i])
		sum += p * clamp01(a.Risk(st))
		total += p
	}
	if total == 0 {
		return math.NaN()
	}
	return sum / total
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}
