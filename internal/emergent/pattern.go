package emergent

// Pattern detectors for aggregate time series. Section V notes that
// "patterns of states exhibited by the collection may also be
// difficult to interpret because of temporal effects or emergent
// behaviors"; these detectors flag the two canonical signatures —
// sustained divergence and oscillation — in any collection-level
// metric.

// TrendSlope returns the least-squares slope of the last window points
// of the series (per step). Fewer than two points yield 0.
func TrendSlope(series []float64, window int) float64 {
	pts := tail(series, window)
	n := len(pts)
	if n < 2 {
		return 0
	}
	// x = 0..n-1; slope = Σ(x-x̄)(y-ȳ) / Σ(x-x̄)².
	xMean := float64(n-1) / 2
	var yMean float64
	for _, y := range pts {
		yMean += y
	}
	yMean /= float64(n)
	var num, den float64
	for i, y := range pts {
		dx := float64(i) - xMean
		num += dx * (y - yMean)
		den += dx * dx
	}
	if den == 0 {
		return 0
	}
	return num / den
}

// DetectDivergence reports whether the metric's trend over the last
// window points exceeds maxSlope — a cumulative drift toward an
// aggregate bad state.
func DetectDivergence(series []float64, window int, maxSlope float64) bool {
	return TrendSlope(series, window) > maxSlope
}

// DetectOscillation reports whether the series' last window points
// change direction at least minSwings times — the instability
// signature that precedes cascades in coupled systems.
func DetectOscillation(series []float64, window, minSwings int) bool {
	pts := tail(series, window)
	if len(pts) < 3 || minSwings < 1 {
		return false
	}
	swings := 0
	prevSign := 0
	for i := 1; i < len(pts); i++ {
		d := pts[i] - pts[i-1]
		sign := 0
		switch {
		case d > 0:
			sign = 1
		case d < 0:
			sign = -1
		}
		if sign != 0 && prevSign != 0 && sign != prevSign {
			swings++
		}
		if sign != 0 {
			prevSign = sign
		}
	}
	return swings >= minSwings
}

func tail(series []float64, window int) []float64 {
	if window <= 0 || window > len(series) {
		return series
	}
	return series[len(series)-window:]
}
