package emergent

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
)

// Property: cascades conserve load — after any cascade, the load still
// carried by survivors plus the shed load equals the initial total.
func TestCascadeLoadConservationProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	for trial := 0; trial < 100; trial++ {
		n := 3 + rng.Intn(20)
		ln := NewLoadNetwork()
		total := 0.0
		for i := 0; i < n; i++ {
			capacity := 5 + rng.Float64()*15
			load := rng.Float64() * capacity
			total += load
			if err := ln.AddNode(fmt.Sprintf("n%02d", i), capacity, load); err != nil {
				t.Fatalf("AddNode: %v", err)
			}
		}
		// Random connected-ish topology: a ring plus random chords.
		for i := 0; i < n; i++ {
			if err := ln.Connect(fmt.Sprintf("n%02d", i), fmt.Sprintf("n%02d", (i+1)%n)); err != nil {
				t.Fatalf("Connect: %v", err)
			}
		}
		for i := 0; i < n/2; i++ {
			a, b := rng.Intn(n), rng.Intn(n)
			if a != b {
				_ = ln.Connect(fmt.Sprintf("n%02d", a), fmt.Sprintf("n%02d", b))
			}
		}

		trigger := fmt.Sprintf("n%02d", rng.Intn(n))
		report, err := ln.TriggerFailure(trigger)
		if err != nil {
			t.Fatalf("TriggerFailure: %v", err)
		}
		surviving := 0.0
		for _, node := range ln.Nodes() {
			if !node.Failed {
				surviving += node.Load
			}
		}
		if math.Abs(surviving+report.ShedLoad-total) > 1e-6*(1+total) {
			t.Fatalf("trial %d: load not conserved: surviving %.6f + shed %.6f != total %.6f",
				trial, surviving, report.ShedLoad, total)
		}
		// Failed + survivors partitions the node set.
		if len(report.Failed)+report.Survivors != n {
			t.Fatalf("trial %d: failed %d + survivors %d != %d", trial, len(report.Failed), report.Survivors, n)
		}
	}
}

// Property: SimulateFailure and TriggerFailure agree exactly on
// identical networks.
func TestSimulationMatchesRealityProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(102))
	for trial := 0; trial < 50; trial++ {
		n := 3 + rng.Intn(15)
		build := func() *LoadNetwork {
			r := rand.New(rand.NewSource(int64(trial)))
			ln := NewLoadNetwork()
			for i := 0; i < n; i++ {
				capacity := 5 + r.Float64()*15
				if err := ln.AddNode(fmt.Sprintf("n%02d", i), capacity, r.Float64()*capacity); err != nil {
					t.Fatalf("AddNode: %v", err)
				}
			}
			for i := 0; i < n; i++ {
				if err := ln.Connect(fmt.Sprintf("n%02d", i), fmt.Sprintf("n%02d", (i+1)%n)); err != nil {
					t.Fatalf("Connect: %v", err)
				}
			}
			return ln
		}
		ln := build()
		predicted, err := ln.SimulateFailure("n00")
		if err != nil {
			t.Fatalf("SimulateFailure: %v", err)
		}
		actual, err := ln.TriggerFailure("n00")
		if err != nil {
			t.Fatalf("TriggerFailure: %v", err)
		}
		if len(predicted.Failed) != len(actual.Failed) || predicted.Survivors != actual.Survivors ||
			math.Abs(predicted.ShedLoad-actual.ShedLoad) > 1e-9 {
			t.Fatalf("trial %d: prediction diverged: %+v vs %+v", trial, predicted, actual)
		}
	}
}
