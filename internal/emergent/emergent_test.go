package emergent

import (
	"fmt"
	"math"
	"testing"
)

// ringNetwork builds n nodes in a ring, each at the given load with
// the given capacity.
func ringNetwork(t *testing.T, n int, capacity, load float64) *LoadNetwork {
	t.Helper()
	ln := NewLoadNetwork()
	for i := 0; i < n; i++ {
		if err := ln.AddNode(nodeID(i), capacity, load); err != nil {
			t.Fatalf("AddNode: %v", err)
		}
	}
	for i := 0; i < n; i++ {
		if err := ln.Connect(nodeID(i), nodeID((i+1)%n)); err != nil {
			t.Fatalf("Connect: %v", err)
		}
	}
	return ln
}

func nodeID(i int) string { return fmt.Sprintf("n%02d", i) }

func TestAddNodeValidation(t *testing.T) {
	ln := NewLoadNetwork()
	if err := ln.AddNode("", 1, 0); err == nil {
		t.Error("empty ID accepted")
	}
	if err := ln.AddNode("a", 1, 2); err == nil {
		t.Error("overloaded node accepted")
	}
	if err := ln.AddNode("a", 1, 0.5); err != nil {
		t.Fatalf("AddNode: %v", err)
	}
	if err := ln.AddNode("a", 1, 0.5); err == nil {
		t.Error("duplicate accepted")
	}
	if err := ln.Connect("a", "a"); err == nil {
		t.Error("self link accepted")
	}
	if err := ln.Connect("a", "ghost"); err == nil {
		t.Error("unknown endpoint accepted")
	}
	if err := ln.Connect("ghost", "a"); err == nil {
		t.Error("unknown endpoint accepted")
	}
	n, ok := ln.Node("a")
	if !ok || n.Headroom() != 0.5 {
		t.Errorf("Node = %+v,%v", n, ok)
	}
	if _, ok := ln.Node("ghost"); ok {
		t.Error("ghost node found")
	}
}

func TestCascadeRollingBlackout(t *testing.T) {
	// Ring of 10, capacity 10, load 8: individually good (headroom 2),
	// but one failure dumps 4 extra load on each neighbor → cascade.
	ln := ringNetwork(t, 10, 10, 8)
	report, err := ln.TriggerFailure(nodeID(0))
	if err != nil {
		t.Fatalf("TriggerFailure: %v", err)
	}
	if report.Trigger != nodeID(0) {
		t.Errorf("Trigger = %s", report.Trigger)
	}
	if len(report.Failed) != 10 || report.Survivors != 0 {
		t.Errorf("failed %d, survivors %d — want total blackout", len(report.Failed), report.Survivors)
	}
	if report.FailureFraction() != 1 {
		t.Errorf("FailureFraction = %g", report.FailureFraction())
	}
	if report.Rounds < 2 {
		t.Errorf("Rounds = %d, want a multi-round cascade", report.Rounds)
	}
	if report.ShedLoad <= 0 {
		t.Errorf("ShedLoad = %g, want positive (last failures have no live neighbors)", report.ShedLoad)
	}
}

func TestCascadeContainedWithHeadroom(t *testing.T) {
	// Ring of 10, capacity 20, load 8: one failure adds 4 to each
	// neighbor (12 < 20) — no cascade.
	ln := ringNetwork(t, 10, 20, 8)
	report, err := ln.TriggerFailure(nodeID(3))
	if err != nil {
		t.Fatalf("TriggerFailure: %v", err)
	}
	if len(report.Failed) != 1 || report.Survivors != 9 {
		t.Errorf("failed %v, survivors %d — want contained failure", report.Failed, report.Survivors)
	}
}

func TestTriggerFailureErrors(t *testing.T) {
	ln := ringNetwork(t, 4, 100, 1)
	if _, err := ln.TriggerFailure("ghost"); err == nil {
		t.Error("unknown trigger accepted")
	}
	if _, err := ln.TriggerFailure(nodeID(0)); err != nil {
		t.Fatalf("TriggerFailure: %v", err)
	}
	if _, err := ln.TriggerFailure(nodeID(0)); err == nil {
		t.Error("double failure accepted")
	}
}

func TestSimulateFailureLeavesNetworkIntact(t *testing.T) {
	ln := ringNetwork(t, 10, 10, 8)
	report, err := ln.SimulateFailure(nodeID(0))
	if err != nil {
		t.Fatalf("SimulateFailure: %v", err)
	}
	if len(report.Failed) != 10 {
		t.Errorf("simulated cascade failed %d", len(report.Failed))
	}
	// Real network untouched: all nodes alive at original load.
	for _, n := range ln.Nodes() {
		if n.Failed || n.Load != 8 {
			t.Fatalf("real network mutated: %+v", n)
		}
	}
}

func TestMostFragile(t *testing.T) {
	// A hub-and-spoke: hub carries high load; spokes are light. A
	// failing hub drops load on spokes; a failing spoke barely
	// matters.
	ln := NewLoadNetwork()
	if err := ln.AddNode("hub", 50, 40); err != nil {
		t.Fatalf("AddNode: %v", err)
	}
	for i := 0; i < 4; i++ {
		id := fmt.Sprintf("spoke%d", i)
		if err := ln.AddNode(id, 12, 8); err != nil {
			t.Fatalf("AddNode: %v", err)
		}
		if err := ln.Connect("hub", id); err != nil {
			t.Fatalf("Connect: %v", err)
		}
	}
	worst, err := ln.MostFragile()
	if err != nil {
		t.Fatalf("MostFragile: %v", err)
	}
	if worst.Trigger != "hub" {
		t.Errorf("most fragile trigger = %s, want hub", worst.Trigger)
	}
	if len(worst.Failed) != 5 {
		t.Errorf("hub cascade failed %d, want 5", len(worst.Failed))
	}
	empty := NewLoadNetwork()
	if _, err := empty.MostFragile(); err == nil {
		t.Error("empty network accepted")
	}
}

func TestFailureFractionEmpty(t *testing.T) {
	var r CascadeReport
	if r.FailureFraction() != 0 {
		t.Error("empty report fraction != 0")
	}
}

func TestTrendSlope(t *testing.T) {
	rising := []float64{1, 2, 3, 4, 5}
	if got := TrendSlope(rising, 5); math.Abs(got-1) > 1e-9 {
		t.Errorf("slope = %g, want 1", got)
	}
	flat := []float64{3, 3, 3}
	if got := TrendSlope(flat, 3); got != 0 {
		t.Errorf("flat slope = %g", got)
	}
	if got := TrendSlope([]float64{1}, 5); got != 0 {
		t.Errorf("single-point slope = %g", got)
	}
	// Window larger than series uses all points; window 0 too.
	if got := TrendSlope(rising, 0); math.Abs(got-1) > 1e-9 {
		t.Errorf("slope(window 0) = %g", got)
	}
	// Only the tail counts.
	series := []float64{100, 100, 1, 2, 3}
	if got := TrendSlope(series, 3); math.Abs(got-1) > 1e-9 {
		t.Errorf("tail slope = %g, want 1", got)
	}
}

func TestDetectDivergence(t *testing.T) {
	heat := []float64{10, 10.5, 11, 13, 16, 20, 25}
	if !DetectDivergence(heat, 4, 2) {
		t.Error("accelerating series not detected")
	}
	if DetectDivergence(heat, 4, 10) {
		t.Error("slope threshold ignored")
	}
	stable := []float64{10, 10, 10, 10}
	if DetectDivergence(stable, 4, 0.1) {
		t.Error("stable series flagged")
	}
}

func TestDetectOscillation(t *testing.T) {
	swingy := []float64{0, 5, 0, 5, 0, 5}
	if !DetectOscillation(swingy, 6, 3) {
		t.Error("oscillation not detected")
	}
	monotone := []float64{1, 2, 3, 4, 5, 6}
	if DetectOscillation(monotone, 6, 1) {
		t.Error("monotone series flagged")
	}
	if DetectOscillation(swingy, 2, 1) {
		t.Error("too-short window flagged")
	}
	if DetectOscillation(swingy, 6, 0) {
		t.Error("minSwings 0 accepted")
	}
	withPlateau := []float64{0, 5, 5, 0, 5}
	if !DetectOscillation(withPlateau, 5, 2) {
		t.Error("plateaued oscillation not detected")
	}
}
