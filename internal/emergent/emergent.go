// Package emergent models systems-of-systems emergent behavior
// (Section VI.D, ref [16]): interactions between individually healthy
// components producing collection-level failures, "e.g., rolling
// blackouts in a power grid". It provides a load-redistribution
// cascade model, predictive (what-if) cascade simulation for
// collaborative assessment, and temporal pattern detectors for
// aggregate metrics.
package emergent

import (
	"errors"
	"fmt"
	"sort"
	"sync"
)

// Node is one component in a load network (a power-grid bus, an
// electronic component dissipating heat).
type Node struct {
	ID       string
	Capacity float64
	Load     float64
	Failed   bool
}

// Headroom returns how much additional load the node tolerates.
func (n Node) Headroom() float64 { return n.Capacity - n.Load }

// LoadNetwork is an undirected network of load-bearing components.
// When a node fails, its load redistributes equally to its surviving
// neighbors; overloaded neighbors fail in the next round — the rolling
// blackout. It is safe for concurrent use.
type LoadNetwork struct {
	mu    sync.Mutex
	nodes map[string]*Node
	adj   map[string]map[string]bool
}

// NewLoadNetwork returns an empty network.
func NewLoadNetwork() *LoadNetwork {
	return &LoadNetwork{
		nodes: make(map[string]*Node),
		adj:   make(map[string]map[string]bool),
	}
}

// AddNode inserts a component. Load must not exceed capacity (each
// component starts individually good).
func (ln *LoadNetwork) AddNode(id string, capacity, load float64) error {
	ln.mu.Lock()
	defer ln.mu.Unlock()
	if id == "" {
		return errors.New("emergent: node needs an ID")
	}
	if _, dup := ln.nodes[id]; dup {
		return fmt.Errorf("emergent: duplicate node %q", id)
	}
	if load > capacity {
		return fmt.Errorf("emergent: node %q starts overloaded (%g > %g)", id, load, capacity)
	}
	ln.nodes[id] = &Node{ID: id, Capacity: capacity, Load: load}
	ln.adj[id] = make(map[string]bool)
	return nil
}

// Connect links two nodes (undirected).
func (ln *LoadNetwork) Connect(a, b string) error {
	ln.mu.Lock()
	defer ln.mu.Unlock()
	if a == b {
		return fmt.Errorf("emergent: self-link on %q", a)
	}
	if _, ok := ln.nodes[a]; !ok {
		return fmt.Errorf("emergent: unknown node %q", a)
	}
	if _, ok := ln.nodes[b]; !ok {
		return fmt.Errorf("emergent: unknown node %q", b)
	}
	ln.adj[a][b] = true
	ln.adj[b][a] = true
	return nil
}

// Node returns a copy of the named node.
func (ln *LoadNetwork) Node(id string) (Node, bool) {
	ln.mu.Lock()
	defer ln.mu.Unlock()
	n, ok := ln.nodes[id]
	if !ok {
		return Node{}, false
	}
	return *n, true
}

// Nodes returns copies of all nodes, sorted by ID.
func (ln *LoadNetwork) Nodes() []Node {
	ln.mu.Lock()
	defer ln.mu.Unlock()
	out := make([]Node, 0, len(ln.nodes))
	for _, n := range ln.nodes {
		out = append(out, *n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// CascadeReport summarizes a failure cascade.
type CascadeReport struct {
	// Trigger is the initially failed node.
	Trigger string
	// Failed lists every failed node (including the trigger), sorted.
	Failed []string
	// Rounds is the number of redistribution rounds the cascade took.
	Rounds int
	// Survivors is the number of nodes still operating.
	Survivors int
	// ShedLoad is load that could not be redistributed (no surviving
	// neighbors) — delivered demand lost.
	ShedLoad float64
}

// FailureFraction returns the fraction of nodes that failed.
func (r CascadeReport) FailureFraction() float64 {
	total := len(r.Failed) + r.Survivors
	if total == 0 {
		return 0
	}
	return float64(len(r.Failed)) / float64(total)
}

// TriggerFailure fails the named node and runs the cascade to
// quiescence, mutating the network.
func (ln *LoadNetwork) TriggerFailure(id string) (CascadeReport, error) {
	ln.mu.Lock()
	defer ln.mu.Unlock()
	return ln.cascadeLocked(id)
}

// SimulateFailure runs the cascade on a copy of the network — the
// collaborative what-if assessment devices use before admitting a
// configuration or taking a joint action. The real network is
// untouched.
func (ln *LoadNetwork) SimulateFailure(id string) (CascadeReport, error) {
	clone := ln.clone()
	clone.mu.Lock()
	defer clone.mu.Unlock()
	return clone.cascadeLocked(id)
}

// MostFragile simulates the failure of every node and returns the
// trigger whose cascade fails the largest fraction of the network,
// with its report. Ties break on ID.
func (ln *LoadNetwork) MostFragile() (CascadeReport, error) {
	ids := make([]string, 0)
	ln.mu.Lock()
	for id := range ln.nodes {
		ids = append(ids, id)
	}
	ln.mu.Unlock()
	if len(ids) == 0 {
		return CascadeReport{}, errors.New("emergent: empty network")
	}
	sort.Strings(ids)

	var worst CascadeReport
	for i, id := range ids {
		report, err := ln.SimulateFailure(id)
		if err != nil {
			return CascadeReport{}, err
		}
		if i == 0 || len(report.Failed) > len(worst.Failed) {
			worst = report
		}
	}
	return worst, nil
}

func (ln *LoadNetwork) cascadeLocked(id string) (CascadeReport, error) {
	n, ok := ln.nodes[id]
	if !ok {
		return CascadeReport{}, fmt.Errorf("emergent: unknown node %q", id)
	}
	report := CascadeReport{Trigger: id}
	if n.Failed {
		return CascadeReport{}, fmt.Errorf("emergent: node %q already failed", id)
	}

	frontier := []*Node{n}
	n.Failed = true
	for len(frontier) > 0 {
		report.Rounds++
		var next []*Node
		// Deterministic processing order.
		sort.Slice(frontier, func(i, j int) bool { return frontier[i].ID < frontier[j].ID })
		for _, failed := range frontier {
			var alive []*Node
			for neighbor := range ln.adj[failed.ID] {
				if nb := ln.nodes[neighbor]; !nb.Failed {
					alive = append(alive, nb)
				}
			}
			if len(alive) == 0 {
				report.ShedLoad += failed.Load
				failed.Load = 0
				continue
			}
			share := failed.Load / float64(len(alive))
			failed.Load = 0
			sort.Slice(alive, func(i, j int) bool { return alive[i].ID < alive[j].ID })
			for _, nb := range alive {
				nb.Load += share
				if nb.Load > nb.Capacity && !nb.Failed {
					nb.Failed = true
					next = append(next, nb)
				}
			}
		}
		frontier = next
	}

	for _, node := range ln.nodes {
		if node.Failed {
			report.Failed = append(report.Failed, node.ID)
		} else {
			report.Survivors++
		}
	}
	sort.Strings(report.Failed)
	return report, nil
}

func (ln *LoadNetwork) clone() *LoadNetwork {
	ln.mu.Lock()
	defer ln.mu.Unlock()
	out := NewLoadNetwork()
	for id, n := range ln.nodes {
		copied := *n
		out.nodes[id] = &copied
		out.adj[id] = make(map[string]bool, len(ln.adj[id]))
		for nb := range ln.adj[id] {
			out.adj[id][nb] = true
		}
	}
	return out
}
