package policylang_test

import (
	"fmt"

	"repro/internal/policy"
	"repro/internal/policylang"
)

// Example shows the full DSL round trip: parse text into rules, compile
// to executable policies, evaluate, and render back to canonical text.
func Example() {
	src := `
policy escalate priority 10:
    on smoke-detected
    when intensity > 3
    do request-survey target chem-1 category surveillance
`
	policies, err := policylang.CompileSource(src, policy.OriginHuman)
	if err != nil {
		fmt.Println("compile:", err)
		return
	}
	p := policies[0]

	env := policy.Env{Event: policy.Event{
		Type:  "smoke-detected",
		Attrs: map[string]float64{"intensity": 5},
	}}
	fmt.Println("matches high-intensity smoke:", p.Matches(env))

	text, err := policylang.Format(p)
	if err != nil {
		fmt.Println("format:", err)
		return
	}
	fmt.Print(text)
	// Output:
	// matches high-intensity smoke: true
	// policy escalate priority 10:
	//     on smoke-detected
	//     when intensity > 3
	//     do request-survey target chem-1 category surveillance
}
