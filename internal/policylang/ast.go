package policylang

// Rule is the AST of one parsed policy statement.
type Rule struct {
	// Name is the policy identifier.
	Name string
	// Priority is the evaluation priority (0 if unspecified).
	Priority int
	// Org is the owning organization ("" if unspecified).
	Org string
	// EventType is the triggering event type; "*" is the wildcard.
	EventType string
	// When is the condition expression; nil means always.
	When Expr
	// Forbid distinguishes forbid-rules from do-rules.
	Forbid bool
	// Act describes the directed (do) or matched (forbid) action.
	Act ActionSpec
}

// ActionSpec is the action clause of a rule.
type ActionSpec struct {
	// Name is the action name; for forbid-by-category rules it is "".
	Name string
	// Target optionally names the entity acted on.
	Target string
	// Category is the action-category concept.
	Category string
	// Outcome is the outcome category.
	Outcome string
	// Params are string parameters in source order.
	Params []Param
	// Effects are predicted state deltas in source order.
	Effects []EffectSpec
	// Obligations are obligation names in source order.
	Obligations []string
}

// Param is one key="value" action parameter.
type Param struct {
	Key   string
	Value string
}

// EffectSpec is one `effect var += n` / `effect var -= n` clause.
type EffectSpec struct {
	Variable string
	// Delta is the signed amount added to the variable.
	Delta float64
}

// Expr is a condition expression node.
type Expr interface {
	isExpr()
}

// BinaryExpr is a boolean conjunction or disjunction.
type BinaryExpr struct {
	Op    BoolOp
	Left  Expr
	Right Expr
}

// BoolOp is a boolean operator.
type BoolOp int

// Boolean operators.
const (
	OpAnd BoolOp = iota + 1
	OpOr
)

// String names the operator.
func (o BoolOp) String() string {
	if o == OpOr {
		return "or"
	}
	return "and"
}

// NotExpr negates its operand.
type NotExpr struct {
	Operand Expr
}

// CmpExpr compares a named quantity against a numeric constant.
type CmpExpr struct {
	Quantity string
	Op       string // one of < <= > >= == !=
	Value    float64
}

// LabelExpr tests an event label for equality: `label is "value"`.
type LabelExpr struct {
	Label string
	Value string
}

// TrueExpr is the literal `true`.
type TrueExpr struct{}

func (*BinaryExpr) isExpr() {}
func (*NotExpr) isExpr()    {}
func (*CmpExpr) isExpr()    {}
func (*LabelExpr) isExpr()  {}
func (TrueExpr) isExpr()    {}
