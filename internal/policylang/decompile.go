package policylang

import (
	"fmt"
	"sort"

	"repro/internal/policy"
)

// ErrNotRepresentable is returned when a policy cannot be expressed in
// the DSL (e.g. its condition is an opaque function, as produced by
// learned emulators).
var ErrNotRepresentable = fmt.Errorf("policylang: policy not representable in the DSL")

// Decompile converts an executable policy back into a Rule, so
// machine-generated policies can be rendered, diffed, audited, and
// re-parsed as text. Compile(Decompile(p)) reproduces p up to
// condition flattening (n-ary And/Or become binary trees).
func Decompile(p policy.Policy) (Rule, error) {
	r := Rule{
		Name:      p.ID,
		Priority:  p.Priority,
		Org:       p.Organization,
		EventType: p.EventType,
		Forbid:    p.Modality == policy.ModalityForbid,
	}
	if p.Condition != nil {
		expr, err := decompileCond(p.Condition)
		if err != nil {
			return Rule{}, fmt.Errorf("%w: policy %s: %v", ErrNotRepresentable, p.ID, err)
		}
		r.When = expr
	}
	r.Act = decompileAction(p.Action)
	return r, nil
}

// Format renders a policy as DSL text (Decompile + Print).
func Format(p policy.Policy) (string, error) {
	r, err := Decompile(p)
	if err != nil {
		return "", err
	}
	return Print(r), nil
}

func decompileAction(a policy.Action) ActionSpec {
	spec := ActionSpec{
		Name:     a.Name,
		Target:   a.Target,
		Category: string(a.Category),
		Outcome:  string(a.Outcome),
	}
	if spec.Name == policy.NoAction.Name && a.Category != "" {
		// Forbid-by-category actions may carry no name.
		spec.Name = a.Name
	}
	if len(a.Params) > 0 {
		keys := make([]string, 0, len(a.Params))
		for k := range a.Params {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			spec.Params = append(spec.Params, Param{Key: k, Value: a.Params[k]})
		}
	}
	if len(a.Effect) > 0 {
		vars := make([]string, 0, len(a.Effect))
		for v := range a.Effect {
			vars = append(vars, v)
		}
		sort.Strings(vars)
		for _, v := range vars {
			spec.Effects = append(spec.Effects, EffectSpec{Variable: v, Delta: a.Effect[v]})
		}
	}
	if len(a.Obligations) > 0 {
		spec.Obligations = append([]string(nil), a.Obligations...)
	}
	return spec
}

func decompileCond(c policy.Condition) (Expr, error) {
	switch n := c.(type) {
	case policy.True:
		return TrueExpr{}, nil
	case policy.False:
		// The language has no false literal; `not (true)` is its
		// canonical spelling (the empty Or decompiles the same way).
		return &NotExpr{Operand: TrueExpr{}}, nil
	case policy.Threshold:
		op := n.Op.String()
		if op == "?" {
			return nil, fmt.Errorf("unknown comparison operator %d", int(n.Op))
		}
		return &CmpExpr{Quantity: n.Quantity, Op: op, Value: n.Value}, nil
	case policy.LabelEquals:
		return &LabelExpr{Label: n.Label, Value: n.Value}, nil
	case policy.Not:
		if n.Of == nil {
			return nil, fmt.Errorf("negation of nil condition")
		}
		inner, err := decompileCond(n.Of)
		if err != nil {
			return nil, err
		}
		return &NotExpr{Operand: inner}, nil
	case policy.And:
		return decompileChain([]policy.Condition(n), OpAnd, true)
	case policy.Or:
		return decompileChain([]policy.Condition(n), OpOr, false)
	default:
		return nil, fmt.Errorf("condition type %T has no textual form", c)
	}
}

// decompileChain folds an n-ary boolean into a left-associated binary
// tree; the empty And is `true` and the empty Or is `not (true)`.
func decompileChain(conds []policy.Condition, op BoolOp, emptyIsTrue bool) (Expr, error) {
	if len(conds) == 0 {
		if emptyIsTrue {
			return TrueExpr{}, nil
		}
		return &NotExpr{Operand: TrueExpr{}}, nil
	}
	acc, err := decompileCond(conds[0])
	if err != nil {
		return nil, err
	}
	for _, c := range conds[1:] {
		next, err := decompileCond(c)
		if err != nil {
			return nil, err
		}
		acc = &BinaryExpr{Op: op, Left: acc, Right: next}
	}
	return acc, nil
}
