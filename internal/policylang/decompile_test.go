package policylang

import (
	"errors"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/policy"
)

func TestDecompileFormat(t *testing.T) {
	p := policy.Policy{
		ID: "escalate", Organization: "us", Priority: 10,
		EventType: "smoke-detected", Modality: policy.ModalityDo,
		Condition: policy.And{
			policy.Threshold{Quantity: "intensity", Op: policy.CmpGT, Value: 3},
			policy.LabelEquals{Label: "kind", Value: "mule"},
		},
		Action: policy.Action{
			Name: "dispatch", Target: "chem-1", Category: "surveillance",
			Params:      map[string]string{"mode": "fast"},
			Obligations: []string{"notify-hq"},
		},
	}
	text, err := Format(p)
	if err != nil {
		t.Fatalf("Format: %v", err)
	}
	for _, want := range []string{
		"policy escalate priority 10 org us:",
		"on smoke-detected",
		`when intensity > 3 and kind is "mule"`,
		"do dispatch target chem-1 category surveillance",
		`param mode = "fast"`,
		"obligation notify-hq",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("Format missing %q:\n%s", want, text)
		}
	}
	// The text re-compiles to an equivalent policy.
	back, err := CompileSource(text, p.Origin)
	if err != nil {
		t.Fatalf("CompileSource(Format(p)): %v\n%s", err, text)
	}
	if back[0].ID != p.ID || back[0].Action.Target != p.Action.Target {
		t.Errorf("round trip lost fields: %+v", back[0])
	}
}

func TestDecompileForbid(t *testing.T) {
	p := policy.Policy{
		ID: "no-kinetic", EventType: "*", Priority: 100,
		Modality: policy.ModalityForbid,
		Action:   policy.Action{Category: "kinetic-action"},
	}
	text, err := Format(p)
	if err != nil {
		t.Fatalf("Format: %v", err)
	}
	if !strings.Contains(text, "forbid category kinetic-action") {
		t.Errorf("Format = %s", text)
	}
	if _, err := CompileSource(text, p.Origin); err != nil {
		t.Errorf("forbid round trip: %v", err)
	}
}

func TestDecompileUnrepresentable(t *testing.T) {
	p := policy.Policy{
		ID: "learned", EventType: "e", Modality: policy.ModalityDo,
		Condition: policy.CondFunc{Name: "opaque", Fn: func(policy.Env) bool { return true }},
		Action:    policy.Action{Name: "a"},
	}
	if _, err := Decompile(p); !errors.Is(err, ErrNotRepresentable) {
		t.Errorf("opaque condition error = %v", err)
	}
	bad := policy.Policy{
		ID: "badop", EventType: "e", Modality: policy.ModalityDo,
		Condition: policy.Threshold{Quantity: "x", Op: policy.CmpOp(99), Value: 1},
		Action:    policy.Action{Name: "a"},
	}
	if _, err := Decompile(bad); err == nil {
		t.Error("unknown operator accepted")
	}
	nilNot := policy.Policy{
		ID: "nilnot", EventType: "e", Modality: policy.ModalityDo,
		Condition: policy.Not{},
		Action:    policy.Action{Name: "a"},
	}
	if _, err := Decompile(nilNot); err == nil {
		t.Error("nil negation accepted")
	}
}

func TestDecompileEmptyBooleans(t *testing.T) {
	andP := policy.Policy{
		ID: "emptyand", EventType: "e", Modality: policy.ModalityDo,
		Condition: policy.And{},
		Action:    policy.Action{Name: "a"},
	}
	r, err := Decompile(andP)
	if err != nil {
		t.Fatalf("Decompile: %v", err)
	}
	if _, ok := r.When.(TrueExpr); !ok {
		t.Errorf("empty And = %#v, want true", r.When)
	}
	orP := andP
	orP.Condition = policy.Or{}
	r, err = Decompile(orP)
	if err != nil {
		t.Fatalf("Decompile: %v", err)
	}
	if _, ok := r.When.(*NotExpr); !ok {
		t.Errorf("empty Or = %#v, want not(true)", r.When)
	}
}

// Property: Compile → Decompile → Print → Parse → Compile reaches a
// fixed point with equivalent evaluation behavior.
func TestCompileDecompileSemanticsProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for i := 0; i < 200; i++ {
		original := genRule(rng)
		p1, err := Compile(original, policy.OriginGenerated)
		if err != nil {
			t.Fatalf("Compile: %v", err)
		}
		text, err := Format(p1)
		if err != nil {
			t.Fatalf("Format: %v\npolicy: %v", err, p1)
		}
		p2list, err := CompileSource(text, policy.OriginGenerated)
		if err != nil {
			t.Fatalf("re-compile: %v\n%s", err, text)
		}
		p2 := p2list[0]

		// Evaluate both under random environments; behavior must match.
		for trial := 0; trial < 20; trial++ {
			env := policy.Env{Event: policy.Event{
				Type: []string{original.EventType, "other"}[rng.Intn(2)],
				Attrs: map[string]float64{
					"alpha": rng.Float64() * 300, "x9": rng.Float64() * 300,
					"convoy": rng.Float64() * 300,
				},
				Labels: map[string]string{"alpha": "lvalpha", "convoy": "other"},
			}}
			if p1.Matches(env) != p2.Matches(env) {
				t.Fatalf("iteration %d: behavior diverged for env %v\noriginal: %v\nreparsed: %v\ntext:\n%s",
					i, env.Event, p1, p2, text)
			}
		}
	}
}

func TestDecompileFalse(t *testing.T) {
	p := policy.Policy{
		ID: "never", EventType: "e", Modality: policy.ModalityDo,
		Condition: policy.False{},
		Action:    policy.Action{Name: "a"},
	}
	r, err := Decompile(p)
	if err != nil {
		t.Fatalf("Decompile: %v", err)
	}
	not, ok := r.When.(*NotExpr)
	if !ok {
		t.Fatalf("False = %#v, want not(true)", r.When)
	}
	if _, ok := not.Operand.(TrueExpr); !ok {
		t.Fatalf("False = not(%#v), want not(true)", not.Operand)
	}
	// The spelling round-trips: parse the printed form back and check
	// the compiled condition never holds.
	text, err := Format(p)
	if err != nil {
		t.Fatalf("Format: %v", err)
	}
	again, err := CompileSource(text, policy.OriginGenerated)
	if err != nil {
		t.Fatalf("re-compile: %v\n%s", err, text)
	}
	if again[0].Condition.Holds(policy.Env{}) {
		t.Fatalf("re-compiled False condition holds:\n%s", text)
	}
}
