package policylang

import (
	"errors"
	"reflect"
	"strings"
	"testing"

	"repro/internal/policy"
)

const sampleSrc = `
# Coalition surveillance policies.
policy escalate priority 10 org us:
    on smoke-detected
    when intensity > 3 and state.fuel >= 10
    do dispatch-chem-drone target chem-1 category surveillance outcome mission-delay
       param mode = "fast" effect fuel -= 5 obligation notify-hq, log-dispatch

policy no-kinetic priority 100:
    on *
    forbid category kinetic-action
`

func TestParseSample(t *testing.T) {
	rules, err := Parse(sampleSrc)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if len(rules) != 2 {
		t.Fatalf("got %d rules, want 2", len(rules))
	}

	r := rules[0]
	if r.Name != "escalate" || r.Priority != 10 || r.Org != "us" {
		t.Errorf("header = %+v", r)
	}
	if r.EventType != "smoke-detected" {
		t.Errorf("EventType = %q", r.EventType)
	}
	bin, ok := r.When.(*BinaryExpr)
	if !ok || bin.Op != OpAnd {
		t.Fatalf("When = %#v, want and-expr", r.When)
	}
	left, ok := bin.Left.(*CmpExpr)
	if !ok || left.Quantity != "intensity" || left.Op != ">" || left.Value != 3 {
		t.Errorf("left cmp = %#v", bin.Left)
	}
	if r.Act.Name != "dispatch-chem-drone" || r.Act.Target != "chem-1" {
		t.Errorf("action = %+v", r.Act)
	}
	if len(r.Act.Params) != 1 || r.Act.Params[0] != (Param{Key: "mode", Value: "fast"}) {
		t.Errorf("params = %+v", r.Act.Params)
	}
	if len(r.Act.Effects) != 1 || r.Act.Effects[0] != (EffectSpec{Variable: "fuel", Delta: -5}) {
		t.Errorf("effects = %+v", r.Act.Effects)
	}
	if len(r.Act.Obligations) != 2 || r.Act.Obligations[1] != "log-dispatch" {
		t.Errorf("obligations = %+v", r.Act.Obligations)
	}

	f := rules[1]
	if !f.Forbid || f.EventType != "*" || f.Act.Category != "kinetic-action" || f.Act.Name != "" {
		t.Errorf("forbid rule = %+v", f)
	}
}

func TestParseExpressionForms(t *testing.T) {
	tests := []struct {
		name string
		when string
	}{
		{name: "or", when: "a > 1 or b < 2"},
		{name: "not", when: "not a == 0"},
		{name: "parens", when: "(a > 1 or b < 2) and c != 3"},
		{name: "label", when: `deviceType is "mule"`},
		{name: "true", when: "true"},
		{name: "negative", when: "a >= -2.5"},
		{name: "precedence", when: "a > 1 or b < 2 and c == 3"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			src := "policy p: on e when " + tt.when + " do act"
			if _, err := ParseOne(src); err != nil {
				t.Fatalf("ParseOne(%q): %v", src, err)
			}
		})
	}
}

func TestPrecedenceAndBindsTighter(t *testing.T) {
	r, err := ParseOne("policy p: on e when a > 1 or b < 2 and c == 3 do act")
	if err != nil {
		t.Fatalf("ParseOne: %v", err)
	}
	top, ok := r.When.(*BinaryExpr)
	if !ok || top.Op != OpOr {
		t.Fatalf("top = %#v, want or", r.When)
	}
	right, ok := top.Right.(*BinaryExpr)
	if !ok || right.Op != OpAnd {
		t.Fatalf("right = %#v, want and", top.Right)
	}
}

func TestParseErrors(t *testing.T) {
	tests := []struct {
		name string
		src  string
	}{
		{name: "missing policy kw", src: "rule p: on e do act"},
		{name: "missing colon", src: "policy p on e do act"},
		{name: "missing event", src: "policy p: on do act"},
		{name: "missing do", src: "policy p: on e"},
		{name: "do without action", src: "policy p: on e do"},
		{name: "forbid matches nothing", src: "policy p: on e forbid target x"},
		{name: "bad effect op", src: "policy p: on e do act effect fuel = 5"},
		{name: "unterminated string", src: `policy p: on e when x is "abc do act`},
		{name: "bad char", src: "policy p: on e when x > 1 % 2 do act"},
		{name: "unclosed paren", src: "policy p: on e when (x > 1 do act"},
		{name: "cmp missing value", src: "policy p: on e when x > do act"},
		{name: "lone plus", src: "policy p: on e do act effect fuel + 5"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := Parse(tt.src)
			if err == nil {
				t.Fatalf("Parse(%q) succeeded", tt.src)
			}
			var syn *SyntaxError
			if !errors.As(err, &syn) {
				t.Errorf("error %v is not a SyntaxError", err)
			}
		})
	}
}

func TestSyntaxErrorPosition(t *testing.T) {
	_, err := Parse("policy p:\n    on e\n    when x % 1 do act")
	var syn *SyntaxError
	if !errors.As(err, &syn) {
		t.Fatalf("error = %v", err)
	}
	if syn.Line != 3 {
		t.Errorf("error line = %d, want 3", syn.Line)
	}
	if !strings.Contains(syn.Error(), "line 3") {
		t.Errorf("Error() = %q", syn.Error())
	}
}

func TestParseOneRejectsMultiple(t *testing.T) {
	if _, err := ParseOne("policy a: on e do x policy b: on e do y"); err == nil {
		t.Error("ParseOne accepted two rules")
	}
}

func TestCompileSample(t *testing.T) {
	policies, err := CompileSource(sampleSrc, policy.OriginHuman)
	if err != nil {
		t.Fatalf("CompileSource: %v", err)
	}
	if len(policies) != 2 {
		t.Fatalf("got %d policies", len(policies))
	}
	p := policies[0]
	if p.ID != "escalate" || p.Origin != policy.OriginHuman || p.Priority != 10 {
		t.Errorf("compiled policy = %v", p)
	}
	if p.Action.Effect["fuel"] != -5 {
		t.Errorf("Effect = %v", p.Action.Effect)
	}

	// Semantics: condition holds only with intensity>3 and fuel>=10.
	env := policy.Env{Event: policy.Event{
		Type:  "smoke-detected",
		Attrs: map[string]float64{"intensity": 5, "state.fuel": 0},
	}}
	// state.fuel prefix resolves through state only; build a real state.
	if p.Matches(env) {
		t.Error("policy matched without state fuel")
	}

	f := policies[1]
	if f.Modality != policy.ModalityForbid || f.Action.Category != "kinetic-action" {
		t.Errorf("forbid = %v", f)
	}
}

func TestCompileConditionSemantics(t *testing.T) {
	src := `policy p: on e when not (x > 5) and (y == 1 or kind is "mule") do act`
	policies, err := CompileSource(src, policy.OriginGenerated)
	if err != nil {
		t.Fatalf("CompileSource: %v", err)
	}
	p := policies[0]
	tests := []struct {
		name  string
		attrs map[string]float64
		label string
		want  bool
	}{
		{name: "y match", attrs: map[string]float64{"x": 1, "y": 1}, want: true},
		{name: "label match", attrs: map[string]float64{"x": 1, "y": 0}, label: "mule", want: true},
		{name: "x too big", attrs: map[string]float64{"x": 9, "y": 1}, want: false},
		{name: "nothing", attrs: map[string]float64{"x": 1, "y": 0}, want: false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			env := policy.Env{Event: policy.Event{
				Type:   "e",
				Attrs:  tt.attrs,
				Labels: map[string]string{"kind": tt.label},
			}}
			if got := p.Matches(env); got != tt.want {
				t.Errorf("Matches = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestCompileInvalidRule(t *testing.T) {
	// Parses but fails policy validation: do with empty action cannot
	// parse, so exercise Compile directly.
	_, err := Compile(Rule{Name: "p", EventType: "e"}, policy.OriginHuman)
	if err == nil {
		t.Error("Compile accepted do-rule without action")
	}
	_, err = Compile(Rule{Name: "p", EventType: "e", When: badExpr{}, Act: ActionSpec{Name: "a"}}, policy.OriginHuman)
	if err == nil {
		t.Error("Compile accepted unknown expression node")
	}
}

type badExpr struct{}

func (badExpr) isExpr() {}

func TestPrintRoundTripFixed(t *testing.T) {
	rules, err := Parse(sampleSrc)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	printed := PrintAll(rules)
	reparsed, err := Parse(printed)
	if err != nil {
		t.Fatalf("Parse(printed): %v\n%s", err, printed)
	}
	if !reflect.DeepEqual(rules, reparsed) {
		t.Errorf("round trip mismatch:\noriginal: %#v\nreparsed: %#v\nprinted:\n%s", rules, reparsed, printed)
	}
}

func TestPrintNegativePriorityAndValues(t *testing.T) {
	r := Rule{
		Name:      "p",
		Priority:  -3,
		EventType: "e",
		When:      &CmpExpr{Quantity: "x", Op: ">=", Value: -2.5},
		Act:       ActionSpec{Name: "act", Effects: []EffectSpec{{Variable: "v", Delta: -1.5}}},
	}
	printed := Print(r)
	back, err := ParseOne(printed)
	if err != nil {
		t.Fatalf("ParseOne(%q): %v", printed, err)
	}
	if !reflect.DeepEqual(r, back) {
		t.Errorf("round trip mismatch:\n%#v\n%#v\nprinted:\n%s", r, back, printed)
	}
}
