package policylang

import (
	"fmt"
	"strconv"
)

// Parse scans and parses source text into rules. It returns the first
// syntax error encountered, with line and column position.
func Parse(src string) ([]Rule, error) {
	p := &parser{lex: newLexer(src)}
	if err := p.advance(); err != nil {
		return nil, err
	}
	var rules []Rule
	for p.tok.Kind != TokenEOF {
		r, err := p.parseRule()
		if err != nil {
			return nil, err
		}
		rules = append(rules, r)
	}
	return rules, nil
}

// ParseOne parses source containing exactly one rule.
func ParseOne(src string) (Rule, error) {
	rules, err := Parse(src)
	if err != nil {
		return Rule{}, err
	}
	if len(rules) != 1 {
		return Rule{}, fmt.Errorf("policylang: expected exactly one rule, got %d", len(rules))
	}
	return rules[0], nil
}

type parser struct {
	lex *lexer
	tok Token
}

func (p *parser) advance() error {
	tok, err := p.lex.next()
	if err != nil {
		return err
	}
	p.tok = tok
	return nil
}

func (p *parser) expectIdent(keyword string) error {
	if p.tok.Kind != TokenIdent || p.tok.Text != keyword {
		return errAt(p.tok.Line, p.tok.Col, "expected %q, got %q", keyword, p.tok.Text)
	}
	return p.advance()
}

func (p *parser) expect(kind TokenKind) (Token, error) {
	if p.tok.Kind != kind {
		return Token{}, errAt(p.tok.Line, p.tok.Col, "expected %s, got %q", kind, p.tok.Text)
	}
	tok := p.tok
	return tok, p.advance()
}

func (p *parser) atKeyword(kw string) bool {
	return p.tok.Kind == TokenIdent && p.tok.Text == kw
}

// parseRule parses:
//
//	policy NAME [priority N] [org NAME] :
//	    on EVENT [when EXPR]
//	    (do ACTION | forbid ACTION)
func (p *parser) parseRule() (Rule, error) {
	var r Rule
	if err := p.expectIdent("policy"); err != nil {
		return r, err
	}
	name, err := p.expect(TokenIdent)
	if err != nil {
		return r, err
	}
	r.Name = name.Text

	for {
		switch {
		case p.atKeyword("priority"):
			if err := p.advance(); err != nil {
				return r, err
			}
			n, err := p.parseSignedInt()
			if err != nil {
				return r, err
			}
			r.Priority = n
		case p.atKeyword("org"):
			if err := p.advance(); err != nil {
				return r, err
			}
			org, err := p.expect(TokenIdent)
			if err != nil {
				return r, err
			}
			r.Org = org.Text
		default:
			goto header_done
		}
	}
header_done:
	if _, err := p.expect(TokenColon); err != nil {
		return r, err
	}
	if err := p.expectIdent("on"); err != nil {
		return r, err
	}
	switch p.tok.Kind {
	case TokenStar:
		r.EventType = "*"
		if err := p.advance(); err != nil {
			return r, err
		}
	case TokenIdent:
		r.EventType = p.tok.Text
		if err := p.advance(); err != nil {
			return r, err
		}
	default:
		return r, errAt(p.tok.Line, p.tok.Col, "expected event type, got %q", p.tok.Text)
	}

	if p.atKeyword("when") {
		if err := p.advance(); err != nil {
			return r, err
		}
		expr, err := p.parseExpr()
		if err != nil {
			return r, err
		}
		r.When = expr
	}

	switch {
	case p.atKeyword("do"):
		if err := p.advance(); err != nil {
			return r, err
		}
		act, err := p.parseAction(false)
		if err != nil {
			return r, err
		}
		r.Act = act
	case p.atKeyword("forbid"):
		if err := p.advance(); err != nil {
			return r, err
		}
		r.Forbid = true
		act, err := p.parseAction(true)
		if err != nil {
			return r, err
		}
		r.Act = act
	default:
		return r, errAt(p.tok.Line, p.tok.Col, "expected 'do' or 'forbid', got %q", p.tok.Text)
	}
	return r, nil
}

// actionKeywords are the clause keywords that can follow an action
// name.
var actionKeywords = map[string]bool{
	"target": true, "category": true, "outcome": true,
	"param": true, "effect": true, "obligation": true,
}

func (p *parser) parseAction(forbid bool) (ActionSpec, error) {
	var a ActionSpec
	// A forbid may start directly with "category"; a do must name an
	// action.
	if p.tok.Kind == TokenIdent && !actionKeywords[p.tok.Text] {
		a.Name = p.tok.Text
		if err := p.advance(); err != nil {
			return a, err
		}
	} else if !forbid {
		return a, errAt(p.tok.Line, p.tok.Col, "expected action name, got %q", p.tok.Text)
	}

	for p.tok.Kind == TokenIdent && actionKeywords[p.tok.Text] {
		kw := p.tok.Text
		if err := p.advance(); err != nil {
			return a, err
		}
		switch kw {
		case "target":
			tok, err := p.expect(TokenIdent)
			if err != nil {
				return a, err
			}
			a.Target = tok.Text
		case "category":
			tok, err := p.expect(TokenIdent)
			if err != nil {
				return a, err
			}
			a.Category = tok.Text
		case "outcome":
			tok, err := p.expect(TokenIdent)
			if err != nil {
				return a, err
			}
			a.Outcome = tok.Text
		case "param":
			key, err := p.expect(TokenIdent)
			if err != nil {
				return a, err
			}
			if _, err := p.expect(TokenEquals); err != nil {
				return a, err
			}
			val, err := p.expect(TokenString)
			if err != nil {
				return a, err
			}
			a.Params = append(a.Params, Param{Key: key.Text, Value: val.Text})
		case "effect":
			eff, err := p.parseEffect()
			if err != nil {
				return a, err
			}
			a.Effects = append(a.Effects, eff)
		case "obligation":
			tok, err := p.expect(TokenIdent)
			if err != nil {
				return a, err
			}
			a.Obligations = append(a.Obligations, tok.Text)
			for p.tok.Kind == TokenComma {
				if err := p.advance(); err != nil {
					return a, err
				}
				tok, err := p.expect(TokenIdent)
				if err != nil {
					return a, err
				}
				a.Obligations = append(a.Obligations, tok.Text)
			}
		}
	}
	if forbid && a.Name == "" && a.Category == "" {
		return a, errAt(p.tok.Line, p.tok.Col, "forbid requires an action name or category")
	}
	return a, nil
}

func (p *parser) parseEffect() (EffectSpec, error) {
	variable, err := p.expect(TokenIdent)
	if err != nil {
		return EffectSpec{}, err
	}
	negative := false
	switch p.tok.Kind {
	case TokenPlusEq:
	case TokenMinusEq:
		negative = true
	default:
		return EffectSpec{}, errAt(p.tok.Line, p.tok.Col, "expected '+=' or '-=', got %q", p.tok.Text)
	}
	if err := p.advance(); err != nil {
		return EffectSpec{}, err
	}
	num, err := p.expect(TokenNumber)
	if err != nil {
		return EffectSpec{}, err
	}
	v, err := strconv.ParseFloat(num.Text, 64)
	if err != nil {
		return EffectSpec{}, errAt(num.Line, num.Col, "bad number %q", num.Text)
	}
	if negative {
		v = -v
	}
	return EffectSpec{Variable: variable.Text, Delta: v}, nil
}

func (p *parser) parseSignedInt() (int, error) {
	negative := false
	if p.tok.Kind == TokenMinus {
		negative = true
		if err := p.advance(); err != nil {
			return 0, err
		}
	}
	tok, err := p.expect(TokenNumber)
	if err != nil {
		return 0, err
	}
	n, err := strconv.Atoi(tok.Text)
	if err != nil {
		return 0, errAt(tok.Line, tok.Col, "bad integer %q", tok.Text)
	}
	if negative {
		n = -n
	}
	return n, nil
}

// Expression grammar: or-expr ← and-expr { "or" and-expr };
// and-expr ← unary { "and" unary }; unary ← "not" unary | "(" expr ")"
// | comparison | "true".
func (p *parser) parseExpr() (Expr, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.atKeyword("or") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		left = &BinaryExpr{Op: OpOr, Left: left, Right: right}
	}
	return left, nil
}

func (p *parser) parseAnd() (Expr, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for p.atKeyword("and") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		right, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		left = &BinaryExpr{Op: OpAnd, Left: left, Right: right}
	}
	return left, nil
}

func (p *parser) parseUnary() (Expr, error) {
	switch {
	case p.atKeyword("not"):
		if err := p.advance(); err != nil {
			return nil, err
		}
		inner, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &NotExpr{Operand: inner}, nil
	case p.atKeyword("true"):
		if err := p.advance(); err != nil {
			return nil, err
		}
		return TrueExpr{}, nil
	case p.tok.Kind == TokenLParen:
		if err := p.advance(); err != nil {
			return nil, err
		}
		inner, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokenRParen); err != nil {
			return nil, err
		}
		return inner, nil
	}
	return p.parseComparison()
}

func (p *parser) parseComparison() (Expr, error) {
	quantity, err := p.expect(TokenIdent)
	if err != nil {
		return nil, err
	}
	if p.atKeyword("is") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		val, err := p.expect(TokenString)
		if err != nil {
			return nil, err
		}
		return &LabelExpr{Label: quantity.Text, Value: val.Text}, nil
	}
	op, err := p.expect(TokenCmp)
	if err != nil {
		return nil, err
	}
	negative := false
	if p.tok.Kind == TokenMinus {
		negative = true
		if err := p.advance(); err != nil {
			return nil, err
		}
	}
	num, err := p.expect(TokenNumber)
	if err != nil {
		return nil, err
	}
	v, err := strconv.ParseFloat(num.Text, 64)
	if err != nil {
		return nil, errAt(num.Line, num.Col, "bad number %q", num.Text)
	}
	if negative {
		v = -v
	}
	return &CmpExpr{Quantity: quantity.Text, Op: op.Text, Value: v}, nil
}
