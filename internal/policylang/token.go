// Package policylang implements a small textual language for
// event–condition–action policies — the concrete carrier for the
// "policy generator grammar / policy template" of the generative policy
// architecture (Section IV). Generated and human-written policies share
// one syntax:
//
//	# comments run to end of line
//	policy escalate priority 10:
//	    on smoke-detected
//	    when intensity > 3 and state.fuel >= 10
//	    do dispatch-chem-drone target chem-1 category surveillance
//	       param mode = "fast" effect fuel -= 5
//	       obligation notify-hq
//
//	policy no-kinetic priority 100:
//	    on *
//	    forbid category kinetic-action
//
// Parse produces an AST ([]Rule); Compile lowers a Rule to a
// policy.Policy; Print renders a Rule back to canonical text.
package policylang

import (
	"fmt"
	"strings"
	"unicode"
)

// TokenKind classifies lexical tokens.
type TokenKind int

// Token kinds.
const (
	TokenEOF TokenKind = iota + 1
	TokenIdent
	TokenNumber
	TokenString
	TokenColon
	TokenComma
	TokenLParen
	TokenRParen
	TokenStar
	TokenEquals  // =
	TokenPlusEq  // +=
	TokenMinusEq // -=
	TokenMinus   // -
	TokenCmp     // < <= > >= == !=
)

// String names the token kind.
func (k TokenKind) String() string {
	switch k {
	case TokenEOF:
		return "EOF"
	case TokenIdent:
		return "identifier"
	case TokenNumber:
		return "number"
	case TokenString:
		return "string"
	case TokenColon:
		return "':'"
	case TokenComma:
		return "','"
	case TokenLParen:
		return "'('"
	case TokenRParen:
		return "')'"
	case TokenStar:
		return "'*'"
	case TokenEquals:
		return "'='"
	case TokenPlusEq:
		return "'+='"
	case TokenMinusEq:
		return "'-='"
	case TokenMinus:
		return "'-'"
	case TokenCmp:
		return "comparison"
	default:
		return "unknown"
	}
}

// Token is one lexical unit with its source position.
type Token struct {
	Kind TokenKind
	Text string
	Line int
	Col  int
}

// SyntaxError reports a lexing or parsing failure with position.
type SyntaxError struct {
	Line int
	Col  int
	Msg  string
}

// Error renders the error with position.
func (e *SyntaxError) Error() string {
	return fmt.Sprintf("policylang: line %d col %d: %s", e.Line, e.Col, e.Msg)
}

func errAt(line, col int, format string, args ...any) error {
	return &SyntaxError{Line: line, Col: col, Msg: fmt.Sprintf(format, args...)}
}

// lexer scans source text into tokens.
type lexer struct {
	src  string
	pos  int
	line int
	col  int
}

func newLexer(src string) *lexer {
	return &lexer{src: src, line: 1, col: 1}
}

func (l *lexer) peek() byte {
	if l.pos >= len(l.src) {
		return 0
	}
	return l.src[l.pos]
}

func (l *lexer) peekAt(off int) byte {
	if l.pos+off >= len(l.src) {
		return 0
	}
	return l.src[l.pos+off]
}

func (l *lexer) advance() byte {
	c := l.src[l.pos]
	l.pos++
	if c == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return c
}

func (l *lexer) skipSpaceAndComments() {
	for l.pos < len(l.src) {
		c := l.peek()
		switch {
		case c == '#':
			for l.pos < len(l.src) && l.peek() != '\n' {
				l.advance()
			}
		case unicode.IsSpace(rune(c)):
			l.advance()
		default:
			return
		}
	}
}

// next returns the next token.
func (l *lexer) next() (Token, error) {
	l.skipSpaceAndComments()
	line, col := l.line, l.col
	if l.pos >= len(l.src) {
		return Token{Kind: TokenEOF, Line: line, Col: col}, nil
	}
	c := l.peek()
	switch {
	case isIdentStart(c):
		return l.lexIdent(line, col), nil
	case c >= '0' && c <= '9':
		return l.lexNumber(line, col), nil
	case c == '"':
		return l.lexString(line, col)
	}
	l.advance()
	switch c {
	case ':':
		return Token{Kind: TokenColon, Text: ":", Line: line, Col: col}, nil
	case ',':
		return Token{Kind: TokenComma, Text: ",", Line: line, Col: col}, nil
	case '(':
		return Token{Kind: TokenLParen, Text: "(", Line: line, Col: col}, nil
	case ')':
		return Token{Kind: TokenRParen, Text: ")", Line: line, Col: col}, nil
	case '*':
		return Token{Kind: TokenStar, Text: "*", Line: line, Col: col}, nil
	case '+':
		if l.peek() == '=' {
			l.advance()
			return Token{Kind: TokenPlusEq, Text: "+=", Line: line, Col: col}, nil
		}
		return Token{}, errAt(line, col, "unexpected '+'")
	case '-':
		if l.peek() == '=' {
			l.advance()
			return Token{Kind: TokenMinusEq, Text: "-=", Line: line, Col: col}, nil
		}
		return Token{Kind: TokenMinus, Text: "-", Line: line, Col: col}, nil
	case '=':
		if l.peek() == '=' {
			l.advance()
			return Token{Kind: TokenCmp, Text: "==", Line: line, Col: col}, nil
		}
		return Token{Kind: TokenEquals, Text: "=", Line: line, Col: col}, nil
	case '!':
		if l.peek() == '=' {
			l.advance()
			return Token{Kind: TokenCmp, Text: "!=", Line: line, Col: col}, nil
		}
		return Token{}, errAt(line, col, "unexpected '!'")
	case '<':
		if l.peek() == '=' {
			l.advance()
			return Token{Kind: TokenCmp, Text: "<=", Line: line, Col: col}, nil
		}
		return Token{Kind: TokenCmp, Text: "<", Line: line, Col: col}, nil
	case '>':
		if l.peek() == '=' {
			l.advance()
			return Token{Kind: TokenCmp, Text: ">=", Line: line, Col: col}, nil
		}
		return Token{Kind: TokenCmp, Text: ">", Line: line, Col: col}, nil
	}
	return Token{}, errAt(line, col, "unexpected character %q", string(c))
}

func (l *lexer) lexIdent(line, col int) Token {
	var b strings.Builder
	for l.pos < len(l.src) {
		c := l.peek()
		if isIdentPart(c) {
			b.WriteByte(c)
			l.advance()
			continue
		}
		// A '-' stays inside an identifier only when sandwiched
		// between alphanumerics, so "chem-1" is one token but
		// "x -= 1" and "x - 1" lex as operators.
		if c == '-' && isAlnum(l.peekAt(1)) {
			b.WriteByte(c)
			l.advance()
			continue
		}
		break
	}
	return Token{Kind: TokenIdent, Text: b.String(), Line: line, Col: col}
}

func (l *lexer) lexNumber(line, col int) Token {
	var b strings.Builder
	seenDot := false
	for l.pos < len(l.src) {
		c := l.peek()
		if c >= '0' && c <= '9' {
			b.WriteByte(c)
			l.advance()
			continue
		}
		if c == '.' && !seenDot && l.peekAt(1) >= '0' && l.peekAt(1) <= '9' {
			seenDot = true
			b.WriteByte(c)
			l.advance()
			continue
		}
		break
	}
	return Token{Kind: TokenNumber, Text: b.String(), Line: line, Col: col}
}

func (l *lexer) lexString(line, col int) (Token, error) {
	l.advance() // opening quote
	var b strings.Builder
	for l.pos < len(l.src) {
		c := l.advance()
		switch c {
		case '"':
			return Token{Kind: TokenString, Text: b.String(), Line: line, Col: col}, nil
		case '\n':
			return Token{}, errAt(line, col, "unterminated string")
		case '\\':
			if l.pos < len(l.src) {
				b.WriteByte(l.advance())
			}
		default:
			b.WriteByte(c)
		}
	}
	return Token{}, errAt(line, col, "unterminated string")
}

func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isIdentPart(c byte) bool {
	return isIdentStart(c) || (c >= '0' && c <= '9') || c == '.'
}

func isAlnum(c byte) bool {
	return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
}
