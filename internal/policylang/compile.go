package policylang

import (
	"fmt"

	"repro/internal/ontology"
	"repro/internal/policy"
	"repro/internal/statespace"
)

// Compile lowers a parsed rule to an executable policy. The origin is
// recorded on the produced policy so that provenance survives
// compilation.
func Compile(r Rule, origin policy.Origin) (policy.Policy, error) {
	p := policy.Policy{
		ID:           r.Name,
		Origin:       origin,
		Organization: r.Org,
		EventType:    r.EventType,
		Priority:     r.Priority,
		Modality:     policy.ModalityDo,
	}
	if r.Forbid {
		p.Modality = policy.ModalityForbid
	}
	if r.When != nil {
		cond, err := compileExpr(r.When)
		if err != nil {
			return policy.Policy{}, fmt.Errorf("policy %s: %w", r.Name, err)
		}
		p.Condition = cond
	}
	p.Action = compileAction(r.Act)
	if err := p.Validate(); err != nil {
		return policy.Policy{}, err
	}
	return p, nil
}

// CompileAll compiles every rule, failing on the first error.
func CompileAll(rules []Rule, origin policy.Origin) ([]policy.Policy, error) {
	out := make([]policy.Policy, 0, len(rules))
	for _, r := range rules {
		p, err := Compile(r, origin)
		if err != nil {
			return nil, err
		}
		out = append(out, p)
	}
	return out, nil
}

// CompileSource parses and compiles policy text in one step.
func CompileSource(src string, origin policy.Origin) ([]policy.Policy, error) {
	rules, err := Parse(src)
	if err != nil {
		return nil, err
	}
	return CompileAll(rules, origin)
}

func compileAction(a ActionSpec) policy.Action {
	act := policy.Action{
		Name:     a.Name,
		Target:   a.Target,
		Category: ontology.Concept(a.Category),
		Outcome:  ontology.Outcome(a.Outcome),
	}
	if len(a.Params) > 0 {
		act.Params = make(map[string]string, len(a.Params))
		for _, p := range a.Params {
			act.Params[p.Key] = p.Value
		}
	}
	if len(a.Effects) > 0 {
		act.Effect = make(statespace.Delta, len(a.Effects))
		for _, e := range a.Effects {
			act.Effect[e.Variable] += e.Delta
		}
	}
	if len(a.Obligations) > 0 {
		act.Obligations = append([]string(nil), a.Obligations...)
	}
	return act
}

func compileExpr(e Expr) (policy.Condition, error) {
	switch n := e.(type) {
	case TrueExpr:
		return policy.True{}, nil
	case *CmpExpr:
		op, err := cmpOp(n.Op)
		if err != nil {
			return nil, err
		}
		return policy.Threshold{Quantity: n.Quantity, Op: op, Value: n.Value}, nil
	case *LabelExpr:
		return policy.LabelEquals{Label: n.Label, Value: n.Value}, nil
	case *NotExpr:
		inner, err := compileExpr(n.Operand)
		if err != nil {
			return nil, err
		}
		return policy.Not{Of: inner}, nil
	case *BinaryExpr:
		left, err := compileExpr(n.Left)
		if err != nil {
			return nil, err
		}
		right, err := compileExpr(n.Right)
		if err != nil {
			return nil, err
		}
		if n.Op == OpOr {
			return policy.Or{left, right}, nil
		}
		return policy.And{left, right}, nil
	default:
		return nil, fmt.Errorf("policylang: unknown expression node %T", e)
	}
}

func cmpOp(s string) (policy.CmpOp, error) {
	switch s {
	case "<":
		return policy.CmpLT, nil
	case "<=":
		return policy.CmpLE, nil
	case ">":
		return policy.CmpGT, nil
	case ">=":
		return policy.CmpGE, nil
	case "==":
		return policy.CmpEQ, nil
	case "!=":
		return policy.CmpNE, nil
	default:
		return 0, fmt.Errorf("policylang: unknown comparison operator %q", s)
	}
}
