package policylang

import (
	"math/rand"
	"reflect"
	"testing"
)

// genRule produces a random printable rule. Identifiers are drawn from
// a fixed pool so generated text stays lexically valid.
func genRule(rng *rand.Rand) Rule {
	idents := []string{"alpha", "smoke-detected", "x9", "chem-1", "state.fuel", "a_b", "convoy"}
	pick := func() string { return idents[rng.Intn(len(idents))] }

	r := Rule{
		Name:      pick(),
		EventType: pick(),
	}
	if rng.Intn(2) == 0 {
		r.EventType = "*"
	}
	if rng.Intn(2) == 0 {
		r.Priority = rng.Intn(201) - 100
	}
	if rng.Intn(2) == 0 {
		r.Org = pick()
	}
	if rng.Intn(4) != 0 {
		r.When = genExpr(rng, 0, pick)
	}
	r.Forbid = rng.Intn(3) == 0

	act := ActionSpec{}
	if r.Forbid && rng.Intn(2) == 0 {
		act.Category = pick()
	} else {
		act.Name = pick()
		if rng.Intn(2) == 0 {
			act.Target = pick()
		}
		if rng.Intn(2) == 0 {
			act.Category = pick()
		}
		if rng.Intn(2) == 0 {
			act.Outcome = pick()
		}
		for i := 0; i < rng.Intn(3); i++ {
			act.Params = append(act.Params, Param{Key: pick(), Value: "v" + pick()})
		}
		for i := 0; i < rng.Intn(3); i++ {
			act.Effects = append(act.Effects, EffectSpec{
				Variable: pick(),
				Delta:    genDelta(rng),
			})
		}
		for i := 0; i < rng.Intn(3); i++ {
			act.Obligations = append(act.Obligations, pick())
		}
	}
	r.Act = act
	return r
}

// genDelta avoids zero (printed sign would be ambiguous with +=0/-=0
// both parsing to 0, which is fine for compile but not for AST
// equality) and keeps values representable.
func genDelta(rng *rand.Rand) float64 {
	v := float64(rng.Intn(1000)+1) / 4
	if rng.Intn(2) == 0 {
		return -v
	}
	return v
}

func genExpr(rng *rand.Rand, depth int, pick func() string) Expr {
	if depth > 3 {
		return &CmpExpr{Quantity: pick(), Op: ">", Value: 1}
	}
	switch rng.Intn(6) {
	case 0:
		return &BinaryExpr{Op: OpAnd, Left: genExpr(rng, depth+1, pick), Right: genExpr(rng, depth+1, pick)}
	case 1:
		return &BinaryExpr{Op: OpOr, Left: genExpr(rng, depth+1, pick), Right: genExpr(rng, depth+1, pick)}
	case 2:
		return &NotExpr{Operand: genExpr(rng, depth+1, pick)}
	case 3:
		return &LabelExpr{Label: pick(), Value: "lv" + pick()}
	case 4:
		return TrueExpr{}
	default:
		ops := []string{"<", "<=", ">", ">=", "==", "!="}
		return &CmpExpr{
			Quantity: pick(),
			Op:       ops[rng.Intn(len(ops))],
			Value:    genDelta(rng),
		}
	}
}

// Property: Parse(Print(rule)) == rule for randomly generated rules.
func TestPrintParseRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 500; i++ {
		r := genRule(rng)
		printed := Print(r)
		back, err := ParseOne(printed)
		if err != nil {
			t.Fatalf("iteration %d: ParseOne failed: %v\nrule: %#v\nprinted:\n%s", i, err, r, printed)
		}
		if !reflect.DeepEqual(r, back) {
			t.Fatalf("iteration %d: round trip mismatch\noriginal: %#v\nreparsed: %#v\nprinted:\n%s", i, r, back, printed)
		}
	}
}

// Property: every generated rule compiles.
func TestGeneratedRulesCompileProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for i := 0; i < 300; i++ {
		r := genRule(rng)
		if _, err := Compile(r, 3); err != nil {
			t.Fatalf("iteration %d: Compile failed: %v\nrule: %#v", i, err, r)
		}
	}
}
