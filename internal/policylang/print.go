package policylang

import (
	"fmt"
	"strconv"
	"strings"
)

// Print renders a rule in canonical form: one header line and indented
// clause lines. Parse(Print(r)) yields a rule equal to r.
func Print(r Rule) string {
	var b strings.Builder
	b.WriteString("policy ")
	b.WriteString(r.Name)
	if r.Priority != 0 {
		fmt.Fprintf(&b, " priority %d", r.Priority)
	}
	if r.Org != "" {
		fmt.Fprintf(&b, " org %s", r.Org)
	}
	b.WriteString(":\n    on ")
	b.WriteString(r.EventType)
	if r.When != nil {
		b.WriteString("\n    when ")
		b.WriteString(printExpr(r.When, false))
	}
	if r.Forbid {
		b.WriteString("\n    forbid ")
	} else {
		b.WriteString("\n    do ")
	}
	b.WriteString(printAction(r.Act))
	b.WriteByte('\n')
	return b.String()
}

// PrintAll renders rules separated by blank lines.
func PrintAll(rules []Rule) string {
	parts := make([]string, len(rules))
	for i, r := range rules {
		parts[i] = Print(r)
	}
	return strings.Join(parts, "\n")
}

func printAction(a ActionSpec) string {
	var parts []string
	if a.Name != "" {
		parts = append(parts, a.Name)
	}
	if a.Target != "" {
		parts = append(parts, "target "+a.Target)
	}
	if a.Category != "" {
		parts = append(parts, "category "+a.Category)
	}
	if a.Outcome != "" {
		parts = append(parts, "outcome "+a.Outcome)
	}
	for _, p := range a.Params {
		parts = append(parts, fmt.Sprintf("param %s = %q", p.Key, p.Value))
	}
	for _, e := range a.Effects {
		op, v := "+=", e.Delta
		if v < 0 {
			op, v = "-=", -v
		}
		parts = append(parts, fmt.Sprintf("effect %s %s %s", e.Variable, op, formatNumber(v)))
	}
	if len(a.Obligations) > 0 {
		parts = append(parts, "obligation "+strings.Join(a.Obligations, ", "))
	}
	return strings.Join(parts, " ")
}

func printExpr(e Expr, nested bool) string {
	switch n := e.(type) {
	case TrueExpr:
		return "true"
	case *CmpExpr:
		return fmt.Sprintf("%s %s %s", n.Quantity, n.Op, formatNumber(n.Value))
	case *LabelExpr:
		return fmt.Sprintf("%s is %q", n.Label, n.Value)
	case *NotExpr:
		return "not (" + printExpr(n.Operand, false) + ")"
	case *BinaryExpr:
		s := printExpr(n.Left, true) + " " + n.Op.String() + " " + printExpr(n.Right, true)
		if nested {
			return "(" + s + ")"
		}
		return s
	default:
		return "?"
	}
}

func formatNumber(v float64) string {
	if v < 0 {
		return "-" + strconv.FormatFloat(-v, 'f', -1, 64)
	}
	return strconv.FormatFloat(v, 'f', -1, 64)
}
