package sim

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync"
	"time"
)

// Pos is a grid coordinate.
type Pos struct {
	X, Y int
}

// Dist returns the Chebyshev distance between two positions (grid
// moves are 8-directional).
func (p Pos) Dist(q Pos) int {
	dx, dy := abs(p.X-q.X), abs(p.Y-q.Y)
	if dx > dy {
		return dx
	}
	return dy
}

// String renders the position.
func (p Pos) String() string { return fmt.Sprintf("(%d,%d)", p.X, p.Y) }

// Human is a person in the world. Humans random-walk each step unless
// Stationary.
type Human struct {
	ID         string
	Pos        Pos
	Stationary bool
	// Harmed marks the human as already harmed; harmed humans stop
	// moving and are not harmed again.
	Harmed bool
}

// HazardKind labels what kind of hazard occupies a cell.
type HazardKind string

// Well-known hazard kinds.
const (
	HazardHole HazardKind = "hole"
	HazardFire HazardKind = "fire"
	HazardMine HazardKind = "mine"
)

// Hazard is a dangerous cell created by a device action (e.g. a dug
// hole). A Marked hazard has warnings posted (the paper's obligation
// example), which lets humans avoid it.
type Hazard struct {
	ID       string
	Pos      Pos
	Kind     HazardKind
	Severity float64
	Marked   bool
}

// HarmEvent records one instance of harm to a human — the quantity
// every experiment ultimately measures.
type HarmEvent struct {
	Time     time.Time
	HumanID  string
	Cause    string
	Severity float64
	// Direct is true when a device action harmed the human
	// immediately, false for indirect harm (e.g. falling into an
	// unmarked hole later).
	Direct bool
}

// World is a bounded grid containing humans and hazards. All methods
// are safe for concurrent use. Movement and harm are deterministic
// given the injected random source.
type World struct {
	mu      sync.Mutex
	w, h    int
	rng     *rand.Rand
	clock   *Clock
	humans  map[string]*Human
	hazards map[string]*Hazard
	harms   []HarmEvent
	// markedAvoidProb is the probability a human avoids a marked
	// hazard they step onto.
	markedAvoidProb float64
}

// WorldOption configures a World.
type WorldOption interface {
	apply(*World)
}

type avoidProbOption float64

func (o avoidProbOption) apply(w *World) { w.markedAvoidProb = float64(o) }

// WithMarkedAvoidProbability sets the probability that a human notices
// and avoids a marked hazard (default 0.95).
func WithMarkedAvoidProbability(p float64) WorldOption {
	return avoidProbOption(math.Max(0, math.Min(1, p)))
}

// NewWorld builds a w×h grid world. The random source drives human
// movement; the clock stamps harm events.
func NewWorld(w, h int, rng *rand.Rand, clock *Clock, opts ...WorldOption) (*World, error) {
	if w <= 0 || h <= 0 {
		return nil, fmt.Errorf("sim: world dimensions must be positive, got %dx%d", w, h)
	}
	if rng == nil {
		return nil, fmt.Errorf("sim: world requires a random source")
	}
	if clock == nil {
		return nil, fmt.Errorf("sim: world requires a clock")
	}
	world := &World{
		w: w, h: h,
		rng:             rng,
		clock:           clock,
		humans:          make(map[string]*Human),
		hazards:         make(map[string]*Hazard),
		markedAvoidProb: 0.95,
	}
	for _, o := range opts {
		o.apply(world)
	}
	return world, nil
}

// Size returns the world dimensions.
func (w *World) Size() (int, int) { return w.w, w.h }

// AddHuman places a human; positions are clamped into the grid.
func (w *World) AddHuman(id string, pos Pos, stationary bool) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if id == "" {
		return fmt.Errorf("sim: human needs an ID")
	}
	if _, dup := w.humans[id]; dup {
		return fmt.Errorf("sim: duplicate human %q", id)
	}
	w.humans[id] = &Human{ID: id, Pos: w.clampLocked(pos), Stationary: stationary}
	return nil
}

// AddHazard places a hazard; positions are clamped into the grid.
func (w *World) AddHazard(id string, pos Pos, kind HazardKind, severity float64) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if id == "" {
		return fmt.Errorf("sim: hazard needs an ID")
	}
	if _, dup := w.hazards[id]; dup {
		return fmt.Errorf("sim: duplicate hazard %q", id)
	}
	w.hazards[id] = &Hazard{ID: id, Pos: w.clampLocked(pos), Kind: kind, Severity: severity}
	return nil
}

// MarkHazard posts warnings at a hazard (discharging an obligation).
// It reports whether the hazard exists.
func (w *World) MarkHazard(id string) bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	hz, ok := w.hazards[id]
	if ok {
		hz.Marked = true
	}
	return ok
}

// RemoveHazard deletes a hazard (e.g. a backfilled hole) and reports
// whether it existed.
func (w *World) RemoveHazard(id string) bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	_, ok := w.hazards[id]
	delete(w.hazards, id)
	return ok
}

// Humans returns copies of all humans, sorted by ID.
func (w *World) Humans() []Human {
	w.mu.Lock()
	defer w.mu.Unlock()
	out := make([]Human, 0, len(w.humans))
	for _, h := range w.humans {
		out = append(out, *h)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Hazards returns copies of all hazards, sorted by ID.
func (w *World) Hazards() []Hazard {
	w.mu.Lock()
	defer w.mu.Unlock()
	out := make([]Hazard, 0, len(w.hazards))
	for _, hz := range w.hazards {
		out = append(out, *hz)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// HumansWithin returns the IDs of unharmed humans within radius
// (Chebyshev) of pos, sorted.
func (w *World) HumansWithin(pos Pos, radius int) []string {
	w.mu.Lock()
	defer w.mu.Unlock()
	var out []string
	for _, h := range w.humans {
		if !h.Harmed && h.Pos.Dist(pos) <= radius {
			out = append(out, h.ID)
		}
	}
	sort.Strings(out)
	return out
}

// Strike applies direct harm at pos: every unharmed human within the
// blast radius is harmed. It returns the number of humans harmed. This
// models a kinetic device action.
func (w *World) Strike(pos Pos, radius int, severity float64, cause string) int {
	w.mu.Lock()
	defer w.mu.Unlock()
	n := 0
	for _, h := range w.humans {
		if h.Harmed || h.Pos.Dist(pos) > radius {
			continue
		}
		h.Harmed = true
		w.harms = append(w.harms, HarmEvent{
			Time:     w.clock.Now(),
			HumanID:  h.ID,
			Cause:    cause,
			Severity: severity,
			Direct:   true,
		})
		n++
	}
	return n
}

// StepHumans advances every unharmed, non-stationary human one random
// 8-directional step (staying in bounds), then applies hazard
// encounters: a human on a hazard cell is harmed unless the hazard is
// marked and the human notices the warning.
func (w *World) StepHumans() {
	w.mu.Lock()
	defer w.mu.Unlock()

	ids := make([]string, 0, len(w.humans))
	for id := range w.humans {
		ids = append(ids, id)
	}
	sort.Strings(ids) // deterministic rng consumption order

	for _, id := range ids {
		h := w.humans[id]
		if h.Harmed {
			continue
		}
		if !h.Stationary {
			h.Pos = w.clampLocked(Pos{
				X: h.Pos.X + w.rng.Intn(3) - 1,
				Y: h.Pos.Y + w.rng.Intn(3) - 1,
			})
		}
		for _, hz := range w.hazards {
			if hz.Pos != h.Pos {
				continue
			}
			if hz.Marked && w.rng.Float64() < w.markedAvoidProb {
				continue
			}
			h.Harmed = true
			w.harms = append(w.harms, HarmEvent{
				Time:     w.clock.Now(),
				HumanID:  h.ID,
				Cause:    fmt.Sprintf("%s:%s", hz.Kind, hz.ID),
				Severity: hz.Severity,
				Direct:   false,
			})
			break
		}
	}
}

// Harms returns a copy of all recorded harm events.
func (w *World) Harms() []HarmEvent {
	w.mu.Lock()
	defer w.mu.Unlock()
	out := make([]HarmEvent, len(w.harms))
	copy(out, w.harms)
	return out
}

// HarmCounts returns the number of direct and indirect harm events.
func (w *World) HarmCounts() (direct, indirect int) {
	w.mu.Lock()
	defer w.mu.Unlock()
	for _, h := range w.harms {
		if h.Direct {
			direct++
		} else {
			indirect++
		}
	}
	return direct, indirect
}

func (w *World) clampLocked(p Pos) Pos {
	if p.X < 0 {
		p.X = 0
	}
	if p.X >= w.w {
		p.X = w.w - 1
	}
	if p.Y < 0 {
		p.Y = 0
	}
	if p.Y >= w.h {
		p.Y = w.h - 1
	}
	return p
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}
