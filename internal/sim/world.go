package sim

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync"
	"time"

	"repro/internal/intern"
)

// Pos is a grid coordinate.
type Pos struct {
	X, Y int
}

// Dist returns the Chebyshev distance between two positions (grid
// moves are 8-directional).
func (p Pos) Dist(q Pos) int {
	dx, dy := abs(p.X-q.X), abs(p.Y-q.Y)
	if dx > dy {
		return dx
	}
	return dy
}

// String renders the position.
func (p Pos) String() string { return fmt.Sprintf("(%d,%d)", p.X, p.Y) }

// Human is a person in the world. Humans random-walk each step unless
// Stationary.
type Human struct {
	ID         string
	Pos        Pos
	Stationary bool
	// Harmed marks the human as already harmed; harmed humans stop
	// moving and are not harmed again.
	Harmed bool
}

// HazardKind labels what kind of hazard occupies a cell.
type HazardKind string

// Well-known hazard kinds.
const (
	HazardHole HazardKind = "hole"
	HazardFire HazardKind = "fire"
	HazardMine HazardKind = "mine"
)

// Hazard is a dangerous cell created by a device action (e.g. a dug
// hole). A Marked hazard has warnings posted (the paper's obligation
// example), which lets humans avoid it.
type Hazard struct {
	ID       string
	Pos      Pos
	Kind     HazardKind
	Severity float64
	Marked   bool
}

// HarmEvent records one instance of harm to a human — the quantity
// every experiment ultimately measures.
type HarmEvent struct {
	Time     time.Time
	HumanID  string
	Cause    string
	Severity float64
	// Direct is true when a device action harmed the human
	// immediately, false for indirect harm (e.g. falling into an
	// unmarked hole later).
	Direct bool
}

// World is a bounded grid containing humans and hazards. All methods
// are safe for concurrent use. Movement and harm are deterministic
// given the injected random source.
//
// Entities live in dense slices indexed through interned IDs rather
// than per-entity maps: iteration (the per-step hot path) walks
// contiguous memory in a canonical sorted-by-ID order with no per-step
// allocation or sorting, and — unlike the previous map ranges — the
// order hazards are tested against a human, and the order strike
// victims are recorded, are deterministic by construction.
type World struct {
	mu    sync.Mutex
	w, h  int
	rng   *rand.Rand
	clock *Clock

	// names interns entity IDs; humanIdx/hazardIdx map interned IDs to
	// dense-slice positions.
	names    *intern.Table
	humans   []Human // dense, append-only
	humanIdx map[intern.ID]int32
	// humanOrder holds indices into humans sorted by human ID — the
	// canonical walk order for stepping, striking and listing.
	humanOrder []int32
	hazards    []Hazard // dense, kept sorted by hazard ID
	hazardIdx  map[intern.ID]int32

	harms []HarmEvent
	// markedAvoidProb is the probability a human avoids a marked
	// hazard they step onto.
	markedAvoidProb float64
}

// WorldOption configures a World.
type WorldOption interface {
	apply(*World)
}

type avoidProbOption float64

func (o avoidProbOption) apply(w *World) { w.markedAvoidProb = float64(o) }

// WithMarkedAvoidProbability sets the probability that a human notices
// and avoids a marked hazard (default 0.95).
func WithMarkedAvoidProbability(p float64) WorldOption {
	return avoidProbOption(math.Max(0, math.Min(1, p)))
}

// NewWorld builds a w×h grid world. The random source drives human
// movement; the clock stamps harm events.
func NewWorld(w, h int, rng *rand.Rand, clock *Clock, opts ...WorldOption) (*World, error) {
	if w <= 0 || h <= 0 {
		return nil, fmt.Errorf("sim: world dimensions must be positive, got %dx%d", w, h)
	}
	if rng == nil {
		return nil, fmt.Errorf("sim: world requires a random source")
	}
	if clock == nil {
		return nil, fmt.Errorf("sim: world requires a clock")
	}
	world := &World{
		w: w, h: h,
		rng:             rng,
		clock:           clock,
		names:           intern.NewTable(),
		humanIdx:        make(map[intern.ID]int32),
		hazardIdx:       make(map[intern.ID]int32),
		markedAvoidProb: 0.95,
	}
	for _, o := range opts {
		o.apply(world)
	}
	return world, nil
}

// Size returns the world dimensions.
func (w *World) Size() (int, int) { return w.w, w.h }

// AddHuman places a human; positions are clamped into the grid.
func (w *World) AddHuman(id string, pos Pos, stationary bool) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if id == "" {
		return fmt.Errorf("sim: human needs an ID")
	}
	key := w.names.Of(id)
	if _, dup := w.humanIdx[key]; dup {
		return fmt.Errorf("sim: duplicate human %q", id)
	}
	n := int32(len(w.humans))
	w.humans = append(w.humans, Human{ID: id, Pos: w.clampLocked(pos), Stationary: stationary})
	w.humanIdx[key] = n
	// Insert into the canonical order at the sorted position.
	at := sort.Search(len(w.humanOrder), func(i int) bool {
		return w.humans[w.humanOrder[i]].ID >= id
	})
	w.humanOrder = append(w.humanOrder, 0)
	copy(w.humanOrder[at+1:], w.humanOrder[at:])
	w.humanOrder[at] = n
	return nil
}

// AddHazard places a hazard; positions are clamped into the grid.
func (w *World) AddHazard(id string, pos Pos, kind HazardKind, severity float64) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if id == "" {
		return fmt.Errorf("sim: hazard needs an ID")
	}
	key := w.names.Of(id)
	if _, dup := w.hazardIdx[key]; dup {
		return fmt.Errorf("sim: duplicate hazard %q", id)
	}
	at := sort.Search(len(w.hazards), func(i int) bool { return w.hazards[i].ID >= id })
	w.hazards = append(w.hazards, Hazard{})
	copy(w.hazards[at+1:], w.hazards[at:])
	w.hazards[at] = Hazard{ID: id, Pos: w.clampLocked(pos), Kind: kind, Severity: severity}
	w.hazardIdx[key] = int32(at)
	for i := at + 1; i < len(w.hazards); i++ {
		w.hazardIdx[w.names.Of(w.hazards[i].ID)] = int32(i)
	}
	return nil
}

// MarkHazard posts warnings at a hazard (discharging an obligation).
// It reports whether the hazard exists.
func (w *World) MarkHazard(id string) bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	i, ok := w.hazardIdx[w.names.Lookup(id)]
	if ok {
		w.hazards[i].Marked = true
	}
	return ok
}

// RemoveHazard deletes a hazard (e.g. a backfilled hole) and reports
// whether it existed.
func (w *World) RemoveHazard(id string) bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	key := w.names.Lookup(id)
	at, ok := w.hazardIdx[key]
	if !ok {
		return false
	}
	copy(w.hazards[at:], w.hazards[at+1:])
	w.hazards = w.hazards[:len(w.hazards)-1]
	delete(w.hazardIdx, key)
	for i := int(at); i < len(w.hazards); i++ {
		w.hazardIdx[w.names.Of(w.hazards[i].ID)] = int32(i)
	}
	return true
}

// Humans returns copies of all humans, sorted by ID.
func (w *World) Humans() []Human {
	w.mu.Lock()
	defer w.mu.Unlock()
	out := make([]Human, 0, len(w.humans))
	for _, i := range w.humanOrder {
		out = append(out, w.humans[i])
	}
	return out
}

// Hazards returns copies of all hazards, sorted by ID.
func (w *World) Hazards() []Hazard {
	w.mu.Lock()
	defer w.mu.Unlock()
	out := make([]Hazard, len(w.hazards))
	copy(out, w.hazards)
	return out
}

// HumansWithin returns the IDs of unharmed humans within radius
// (Chebyshev) of pos, sorted.
func (w *World) HumansWithin(pos Pos, radius int) []string {
	w.mu.Lock()
	defer w.mu.Unlock()
	var out []string
	for _, i := range w.humanOrder {
		h := &w.humans[i]
		if !h.Harmed && h.Pos.Dist(pos) <= radius {
			out = append(out, h.ID)
		}
	}
	return out
}

// Strike applies direct harm at pos: every unharmed human within the
// blast radius is harmed, in canonical ID order. It returns the number
// of humans harmed. This models a kinetic device action.
func (w *World) Strike(pos Pos, radius int, severity float64, cause string) int {
	w.mu.Lock()
	defer w.mu.Unlock()
	n := 0
	for _, i := range w.humanOrder {
		h := &w.humans[i]
		if h.Harmed || h.Pos.Dist(pos) > radius {
			continue
		}
		h.Harmed = true
		w.harms = append(w.harms, HarmEvent{
			Time:     w.clock.Now(),
			HumanID:  h.ID,
			Cause:    cause,
			Severity: severity,
			Direct:   true,
		})
		n++
	}
	return n
}

// StepHumans advances every unharmed, non-stationary human one random
// 8-directional step (staying in bounds), then applies hazard
// encounters: a human on a hazard cell is harmed unless the hazard is
// marked and the human notices the warning. Humans step in canonical
// ID order and hazards are tested in canonical ID order, so rng
// consumption is deterministic.
func (w *World) StepHumans() {
	w.mu.Lock()
	defer w.mu.Unlock()

	for _, idx := range w.humanOrder {
		h := &w.humans[idx]
		if h.Harmed {
			continue
		}
		if !h.Stationary {
			h.Pos = w.clampLocked(Pos{
				X: h.Pos.X + w.rng.Intn(3) - 1,
				Y: h.Pos.Y + w.rng.Intn(3) - 1,
			})
		}
		for k := range w.hazards {
			hz := &w.hazards[k]
			if hz.Pos != h.Pos {
				continue
			}
			if hz.Marked && w.rng.Float64() < w.markedAvoidProb {
				continue
			}
			h.Harmed = true
			w.harms = append(w.harms, HarmEvent{
				Time:     w.clock.Now(),
				HumanID:  h.ID,
				Cause:    fmt.Sprintf("%s:%s", hz.Kind, hz.ID),
				Severity: hz.Severity,
				Direct:   false,
			})
			break
		}
	}
}

// Harms returns a copy of all recorded harm events.
func (w *World) Harms() []HarmEvent {
	w.mu.Lock()
	defer w.mu.Unlock()
	out := make([]HarmEvent, len(w.harms))
	copy(out, w.harms)
	return out
}

// HarmCounts returns the number of direct and indirect harm events.
func (w *World) HarmCounts() (direct, indirect int) {
	w.mu.Lock()
	defer w.mu.Unlock()
	for _, h := range w.harms {
		if h.Direct {
			direct++
		} else {
			indirect++
		}
	}
	return direct, indirect
}

func (w *World) clampLocked(p Pos) Pos {
	if p.X < 0 {
		p.X = 0
	}
	if p.X >= w.w {
		p.X = w.w - 1
	}
	if p.Y < 0 {
		p.Y = 0
	}
	if p.Y >= w.h {
		p.Y = w.h - 1
	}
	return p
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}
