// Conservative parallel execution for the discrete-event engine.
//
// The engine stays deterministic under parallelism by construction:
// only events that share a virtual timestamp ever run concurrently,
// events that share a shard key keep their (time, seq) order on a
// single worker, and every side effect that must be ordered — events
// scheduled for the future, audit-journal appends — is buffered in the
// event's Lane and merged on the run goroutine in (time, seq) order
// after the batch. Telemetry needs no buffering: counters and
// histograms are commutative atomics, so any interleaving sums to the
// same snapshot.
package sim

import (
	"container/heap"
	"sync"
	"time"

	"repro/internal/audit"
)

// Lane is the deterministic effect channel of one in-flight sharded
// event. Callbacks receive their lane and must route ordered side
// effects through it:
//
//   - future events:  lane.Schedule / lane.ScheduleShard
//   - audit appends:  lane.Route(log) in place of the log itself
//     (Lane implements audit.Journal)
//
// Everything else a sharded callback touches must be either owned by
// its shard key (a device's state, a recipient's mailbox) or safe and
// order-independent under concurrency (atomic counters, histograms,
// shard-labeled gauges). Wall-clock readings are never deterministic;
// keep them out of anything the determinism gate compares.
//
// In serial runs the engine passes a direct lane whose methods are
// zero-cost pass-throughs, so one callback implementation serves both
// modes. A nil *Lane behaves like a direct lane.
type Lane struct {
	eng    *Engine
	direct bool

	staged   []stagedCall
	journals []laneJournal
}

var _ audit.Journal = (*Lane)(nil)

// stagedCall is one deferred Schedule/ScheduleShard call.
type stagedCall struct {
	delay time.Duration
	shard string
	fn    func()
	lfn   func(*Lane)
}

// laneJournal pairs a destination log with its per-lane staging
// buffer.
type laneJournal struct {
	base  *audit.Log
	stage *audit.Log
}

// Schedule queues fn relative to the current virtual time, exactly
// like Engine.Schedule, but deterministically ordered after the batch.
func (l *Lane) Schedule(delay time.Duration, fn func()) {
	if l == nil || l.direct {
		l.engine().Schedule(delay, fn)
		return
	}
	l.staged = append(l.staged, stagedCall{delay: delay, fn: fn})
}

// ScheduleShard queues a sharded callback, like Engine.ScheduleShard,
// deterministically ordered after the batch.
func (l *Lane) ScheduleShard(delay time.Duration, shard string, fn func(*Lane)) {
	if l == nil || l.direct {
		l.engine().ScheduleShard(delay, shard, fn)
		return
	}
	l.staged = append(l.staged, stagedCall{delay: delay, shard: shard, lfn: fn})
}

// Route implements audit.Journal: appends the callback would make to
// base are buffered in a per-lane staging log and merged into base in
// (time, seq) order after the batch. Direct (serial) lanes and nil
// bases pass through unchanged.
func (l *Lane) Route(base *audit.Log) *audit.Log {
	if base == nil || l == nil || l.direct {
		return base
	}
	for _, j := range l.journals {
		if j.base == base {
			return j.stage
		}
	}
	stage := audit.NewStage(audit.WithClock(l.eng.clock.Now))
	l.journals = append(l.journals, laneJournal{base: base, stage: stage})
	return stage
}

// engine tolerates nil lanes (callers outside any run, e.g. a
// synchronous bus delivery) by treating them as direct.
func (l *Lane) engine() *Engine {
	if l == nil {
		return nil
	}
	return l.eng
}

// flush merges the lane's buffered effects into the engine: staged
// audit entries chain onto their destination logs, staged schedules
// get fresh sequence numbers. Called on the run goroutine, one lane at
// a time, in event (time, seq) order.
//
// The lane keeps its buffers afterwards (truncated, closure references
// dropped): pooled lanes reuse their staging slices and — because
// Adopt leaves an adopted stage empty but intact — their per-log stage
// journals across segments.
func (l *Lane) flush(e *Engine) {
	for _, j := range l.journals {
		j.base.Adopt(j.stage)
	}
	if len(l.staged) > 0 {
		e.mu.Lock()
		for _, c := range l.staged {
			if c.lfn != nil {
				e.push(c.delay, c.shard, nil, c.lfn)
			} else {
				e.push(c.delay, "", c.fn, nil)
			}
		}
		e.mu.Unlock()
	}
	for i := range l.staged {
		l.staged[i] = stagedCall{}
	}
	l.staged = l.staged[:0]
}

// runParallel is Run's batch-parallel loop: it drains the queue one
// same-timestamp batch at a time, fanning sharded events out over the
// worker pool and merging their lanes back deterministically.
func (e *Engine) runParallel(horizon time.Time) error {
	var batch []*scheduled
	for {
		if e.stop.CompareAndSwap(true, false) {
			return ErrStopped
		}
		e.mu.Lock()
		if e.queue.Len() == 0 {
			e.mu.Unlock()
			return nil
		}
		t := e.queue[0].at
		if t.After(horizon) {
			e.mu.Unlock()
			return nil
		}
		batch = batch[:0]
		for e.queue.Len() > 0 && e.queue[0].at.Equal(t) {
			item, _ := heap.Pop(&e.queue).(*scheduled)
			batch = append(batch, item)
		}
		e.mu.Unlock()
		e.clock.AdvanceTo(t)
		if err := e.runBatch(batch); err != nil {
			return err
		}
	}
}

// runBatch executes one same-timestamp batch in seq order: maximal
// runs of sharded events become parallel segments, unkeyed events are
// serial barriers between them.
func (e *Engine) runBatch(batch []*scheduled) error {
	i := 0
	for i < len(batch) {
		if e.stop.CompareAndSwap(true, false) {
			e.requeue(batch[i:])
			return ErrStopped
		}
		if batch[i].shard == "" {
			e.execSerial(batch[i])
			i++
			continue
		}
		j := i
		for j < len(batch) && batch[j].shard != "" {
			j++
		}
		e.runSegment(batch[i:j])
		i = j
	}
	return nil
}

// requeue puts unexecuted batch events back on the queue (their
// timestamps and sequence numbers are still valid) so a mid-batch Stop
// leaves Pending accurate.
func (e *Engine) requeue(items []*scheduled) {
	e.mu.Lock()
	for _, item := range items {
		heap.Push(&e.queue, item)
	}
	e.mu.Unlock()
}

// runSegment executes one run of sharded events across the worker
// pool. Events are grouped by shard key in first-appearance order;
// each group is processed by exactly one worker, in seq order; lanes
// are flushed on the run goroutine in seq order afterwards.
func (e *Engine) runSegment(seg []*scheduled) {
	if len(seg) == 1 {
		e.execSerial(seg[0])
		return
	}

	// Group event indexes by shard, preserving first-appearance order,
	// in scratch reused across segments (run goroutine only).
	if e.segGroupOf == nil {
		e.segGroupOf = make(map[string]int, len(seg))
	}
	groupOf := e.segGroupOf
	clear(groupOf)
	groups := e.segGroups
	for i := range groups {
		groups[i] = groups[i][:0]
	}
	ngroups := 0
	for k, item := range seg {
		gi, ok := groupOf[item.shard]
		if !ok {
			gi = ngroups
			groupOf[item.shard] = gi
			if ngroups == len(groups) {
				groups = append(groups, nil)
			}
			ngroups++
		}
		groups[gi] = append(groups[gi], k)
	}
	e.segGroups = groups
	groups = groups[:ngroups]
	if ngroups == 1 {
		// One shard: no concurrency available, run inline.
		for _, item := range seg {
			e.execSerial(item)
		}
		return
	}

	workers := e.parallelism
	if workers > ngroups {
		workers = ngroups
	}

	// Pre-assign pooled lanes on the run goroutine — workers then
	// allocate nothing per event, and the assignments are published to
	// them by goroutine creation.
	if cap(e.segLanes) < len(seg) {
		e.segLanes = make([]*Lane, len(seg))
	}
	lanes := e.segLanes[:len(seg)]
	for k := range lanes {
		lanes[k] = e.acquireLane()
	}

	// Static round-robin partition of shard groups over the workers: a
	// per-group dispatch channel costs more in synchronization than the
	// imbalance it would fix for the fine-grained shards this engine
	// runs (one device tick, one message delivery).
	var wg sync.WaitGroup
	var panicOnce sync.Once
	var panicked any
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					panicOnce.Do(func() { panicked = r })
				}
			}()
			for gi := w; gi < len(groups); gi += workers {
				for _, k := range groups[gi] {
					seg[k].lfn(lanes[k])
				}
			}
		}(w)
	}
	wg.Wait()
	if panicked != nil {
		panic(panicked)
	}

	// Deterministic merge: lanes flush in event (time, seq) order, then
	// return to the free pool for the next segment.
	for k, item := range seg {
		lanes[k].flush(e)
		e.release(item)
		e.laneFree = append(e.laneFree, lanes[k])
		lanes[k] = nil
	}
}

// acquireLane pops a pooled lane or allocates a fresh one. Run
// goroutine only.
func (e *Engine) acquireLane() *Lane {
	if n := len(e.laneFree); n > 0 {
		l := e.laneFree[n-1]
		e.laneFree[n-1] = nil
		e.laneFree = e.laneFree[:n-1]
		return l
	}
	return &Lane{eng: e}
}
