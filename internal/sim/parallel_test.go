package sim

import (
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"testing"
	"time"

	"repro/internal/audit"
)

// scenarioResult captures everything a differential run compares: the
// full audit chain (hashes included, so "equal" means byte-identical)
// and the per-shard work tallies.
type scenarioResult struct {
	entries []audit.Entry
	tally   []int
}

// runScenario drives one deterministic workload on a fresh engine: a
// fleet of sharded periodic loops that append audit entries through
// their lanes, stage same-time and future re-schedules, and interleave
// with unkeyed barrier events — the full surface the parallel merge
// must keep in serial order. All randomness is drawn at setup time from
// the seed; callbacks themselves are deterministic.
func runScenario(t *testing.T, seed int64, workers int) scenarioResult {
	t.Helper()
	clock := NewClock(t0)
	e := NewEngine(clock)
	e.SetParallelism(workers)
	log := audit.New(audit.WithClock(clock.Now))
	rng := rand.New(rand.NewSource(seed))

	const shards = 8
	tally := make([]int, shards) // distinct indexes per shard: race-free
	ticksFor := make([]int, shards)
	extraEvery := make([]int, shards)
	for s := 0; s < shards; s++ {
		ticksFor[s] = 5 + rng.Intn(10)
		extraEvery[s] = 2 + rng.Intn(3)
	}

	for s := 0; s < shards; s++ {
		s := s
		shard := fmt.Sprintf("dev-%d", s)
		tick := 0
		e.ScheduleEveryShard(time.Second, shard,
			func() bool { return tick < ticksFor[s] },
			func(lane *Lane) {
				tick++
				tally[s]++
				audit.Resolve(lane, log).Append(audit.KindAction, shard,
					fmt.Sprintf("tick %d", tick), map[string]string{"n": fmt.Sprint(tick)})
				if tick%extraEvery[s] == 0 {
					// Same-time keyed follow-up: the engine must re-drain
					// the timestamp and keep it after this event.
					lane.ScheduleShard(0, shard, func(inner *Lane) {
						tally[s]++
						audit.Resolve(inner, log).Append(audit.KindNote, shard,
							fmt.Sprintf("echo %d", tick), nil)
					})
				}
				if tick == ticksFor[s] {
					// Future unkeyed follow-up staged from a shard.
					lane.Schedule(500*time.Millisecond, func() {
						log.Append(audit.KindCheckpoint, shard, "done", nil)
					})
				}
			})
	}

	// Barrier events interleaved between tick timestamps, with a nested
	// schedule to cover re-entrancy from serial segments.
	for i := 1; i <= 4; i++ {
		i := i
		e.Schedule(time.Duration(i)*2*time.Second+250*time.Millisecond, func() {
			log.Append(audit.KindNote, "sweeper", fmt.Sprintf("sweep %d", i), nil)
			e.Schedule(100*time.Millisecond, func() {
				log.Append(audit.KindNote, "sweeper", fmt.Sprintf("post-sweep %d", i), nil)
			})
		})
	}

	if err := e.Run(t0.Add(time.Minute)); err != nil {
		t.Fatalf("Run(workers=%d): %v", workers, err)
	}
	if err := log.Verify(); err != nil {
		t.Fatalf("audit chain broken (workers=%d): %v", workers, err)
	}
	return scenarioResult{entries: log.Entries(), tally: tally}
}

// TestParallelDeterminism is the differential gate: for several seeds,
// a parallel run at any worker count must produce a byte-identical
// audit journal (same entries, same hash chain) and identical work
// tallies as the serial run.
func TestParallelDeterminism(t *testing.T) {
	for _, seed := range []int64{1, 7, 42} {
		serial := runScenario(t, seed, 1)
		if len(serial.entries) == 0 {
			t.Fatalf("seed %d: serial run produced no entries", seed)
		}
		for _, workers := range []int{2, 4, 8} {
			got := runScenario(t, seed, workers)
			if !reflect.DeepEqual(serial.tally, got.tally) {
				t.Errorf("seed %d workers %d: tally = %v, want %v",
					seed, workers, got.tally, serial.tally)
			}
			if !reflect.DeepEqual(serial.entries, got.entries) {
				for i := range serial.entries {
					if i >= len(got.entries) || !reflect.DeepEqual(serial.entries[i], got.entries[i]) {
						t.Errorf("seed %d workers %d: journals diverge at entry %d", seed, workers, i)
						break
					}
				}
				t.Fatalf("seed %d workers %d: journal not byte-identical (%d vs %d entries)",
					seed, workers, len(got.entries), len(serial.entries))
			}
		}
	}
}

// TestLaneDirectAndNil checks the pass-through modes: a nil lane and a
// serial (direct) lane must behave exactly like calling the engine and
// log directly.
func TestLaneDirectAndNil(t *testing.T) {
	clock := NewClock(t0)
	e := NewEngine(clock)
	log := audit.New(audit.WithClock(clock.Now))

	var nilLane *Lane
	if got := nilLane.Route(log); got != log {
		t.Error("nil lane did not pass the log through")
	}
	if got := audit.Resolve(nilLane, nil); got != nil {
		t.Error("nil base log must stay nil through a lane")
	}

	ran := 0
	e.ScheduleShard(time.Second, "d1", func(lane *Lane) {
		if got := lane.Route(log); got != log {
			t.Error("direct lane did not pass the log through")
		}
		lane.Schedule(time.Second, func() { ran++ })
		lane.ScheduleShard(time.Second, "d1", func(*Lane) { ran++ })
	})
	if err := e.Run(t0.Add(time.Minute)); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if ran != 2 {
		t.Errorf("ran = %d, want 2", ran)
	}
}

// TestParallelPanicPropagates ensures a panicking sharded callback
// fails the run loudly instead of deadlocking the pool.
func TestParallelPanicPropagates(t *testing.T) {
	e := NewEngine(NewClock(t0))
	e.SetParallelism(4)
	for i := 0; i < 4; i++ {
		shard := fmt.Sprintf("d%d", i)
		boom := i == 2
		e.ScheduleShard(time.Second, shard, func(*Lane) {
			if boom {
				panic("kaboom")
			}
		})
	}
	defer func() {
		if r := recover(); r == nil {
			t.Error("panic did not propagate")
		}
	}()
	_ = e.Run(t0.Add(time.Minute))
}

// TestParallelStopMidBatch verifies Stop between barrier events of one
// batch requeues the rest, keeping Pending accurate.
func TestParallelStopMidBatch(t *testing.T) {
	e := NewEngine(NewClock(t0))
	e.SetParallelism(2)
	ran := 0
	e.Schedule(time.Second, func() { ran++; e.Stop() })
	e.Schedule(time.Second, func() { ran++ })
	e.ScheduleShard(time.Second, "d1", func(*Lane) { ran++ })
	err := e.Run(t0.Add(time.Minute))
	if !errors.Is(err, ErrStopped) {
		t.Fatalf("Run = %v, want ErrStopped", err)
	}
	if ran != 1 {
		t.Errorf("ran = %d, want 1", ran)
	}
	if e.Pending() != 2 {
		t.Errorf("Pending = %d, want 2 requeued", e.Pending())
	}
	// The stop was consumed; a second Run drains the remainder.
	if err := e.Run(t0.Add(time.Minute)); err != nil {
		t.Fatalf("second Run: %v", err)
	}
	if ran != 3 {
		t.Errorf("after second Run ran = %d, want 3", ran)
	}
}

// TestSetParallelismClamp covers the accessor pair.
func TestSetParallelismClamp(t *testing.T) {
	e := NewEngine(NewClock(t0))
	if e.Parallelism() != 0 {
		t.Errorf("default Parallelism = %d", e.Parallelism())
	}
	e.SetParallelism(-3)
	if e.Parallelism() != 0 {
		t.Errorf("negative clamped to %d", e.Parallelism())
	}
	e.SetParallelism(4)
	if e.Parallelism() != 4 {
		t.Errorf("Parallelism = %d", e.Parallelism())
	}
}
