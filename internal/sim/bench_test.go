package sim

import (
	"testing"
	"time"
)

// BenchmarkEngineSchedule measures the schedule→run cycle of the event
// queue: each iteration queues one event and drains it. The free-list
// recycling of popped scheduled structs shows up here as B/op and
// allocs/op (before recycling: one 48-byte struct per event).
func BenchmarkEngineSchedule(b *testing.B) {
	e := NewEngine(NewClock(t0))
	fn := func() {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Schedule(time.Second, fn)
		if err := e.Run(t0.Add(time.Duration(b.N) * time.Hour)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEngineScheduleBurst queues 1024 events then drains them all,
// amortizing Run's loop overhead across a full queue.
func BenchmarkEngineScheduleBurst(b *testing.B) {
	e := NewEngine(NewClock(t0))
	fn := func() {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := 0; j < 1024; j++ {
			e.Schedule(time.Duration(j)*time.Millisecond, fn)
		}
		if err := e.Run(t0.Add(time.Duration(i+2) * time.Hour)); err != nil {
			b.Fatal(err)
		}
	}
}
