package sim

import (
	"container/heap"
	"errors"
	"time"
)

// ErrStopped is returned by Run when the engine was stopped before the
// horizon.
var ErrStopped = errors.New("sim: engine stopped")

// Engine is a single-threaded discrete-event scheduler over a virtual
// clock: callbacks fire in timestamp order (FIFO among equal
// timestamps), and the clock jumps between event times.
type Engine struct {
	clock   *Clock
	queue   eventQueue
	seq     int
	stopped bool
}

// NewEngine returns an engine over the clock.
func NewEngine(clock *Clock) *Engine {
	return &Engine{clock: clock}
}

// Clock returns the engine's clock.
func (e *Engine) Clock() *Clock { return e.clock }

// Schedule queues fn to run after delay (relative to the current
// virtual time). Non-positive delays run at the current time, after
// already-queued events with the same timestamp.
func (e *Engine) Schedule(delay time.Duration, fn func()) {
	if delay < 0 {
		delay = 0
	}
	e.seq++
	heap.Push(&e.queue, &scheduled{
		at:  e.clock.Now().Add(delay),
		seq: e.seq,
		fn:  fn,
	})
}

// ScheduleEvery queues fn to run every interval until the predicate
// returns false (checked before each run). Interval must be positive.
func (e *Engine) ScheduleEvery(interval time.Duration, while func() bool, fn func()) {
	if interval <= 0 {
		return
	}
	var tick func()
	tick = func() {
		if while != nil && !while() {
			return
		}
		fn()
		e.Schedule(interval, tick)
	}
	e.Schedule(interval, tick)
}

// Stop makes Run return early.
func (e *Engine) Stop() { e.stopped = true }

// Pending returns the number of queued events.
func (e *Engine) Pending() int { return e.queue.Len() }

// Run processes events until the queue is empty or the next event lies
// beyond the horizon, advancing the clock as it goes. It returns
// ErrStopped if Stop was called mid-run.
func (e *Engine) Run(horizon time.Time) error {
	e.stopped = false
	for e.queue.Len() > 0 {
		if e.stopped {
			return ErrStopped
		}
		next := e.queue[0]
		if next.at.After(horizon) {
			return nil
		}
		heap.Pop(&e.queue)
		e.clock.AdvanceTo(next.at)
		next.fn()
	}
	return nil
}

// scheduled is one queued callback.
type scheduled struct {
	at  time.Time
	seq int
	fn  func()
}

// eventQueue is a min-heap ordered by (time, seq).
type eventQueue []*scheduled

func (q eventQueue) Len() int { return len(q) }

func (q eventQueue) Less(i, j int) bool {
	if !q[i].at.Equal(q[j].at) {
		return q[i].at.Before(q[j].at)
	}
	return q[i].seq < q[j].seq
}

func (q eventQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }

func (q *eventQueue) Push(x any) {
	item, ok := x.(*scheduled)
	if !ok {
		return
	}
	*q = append(*q, item)
}

func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	item := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return item
}
