package sim

import (
	"container/heap"
	"errors"
	"sync"
	"sync/atomic"
	"time"
)

// ErrStopped is returned by Run when the engine was stopped before the
// horizon.
var ErrStopped = errors.New("sim: engine stopped")

// Engine is a discrete-event scheduler over a virtual clock: callbacks
// fire in timestamp order (FIFO among equal timestamps), and the clock
// jumps between event times.
//
// By default the engine is serial. SetParallelism enables conservative
// parallel execution: events scheduled with a shard key (ScheduleShard,
// ScheduleEveryShard) that share a timestamp are drained across a
// bounded worker pool — same-shard events stay ordered on one worker,
// unkeyed events act as serial barriers — and every lane's deferred
// schedules and audit appends are merged back in (time, seq) order.
// A fixed seed therefore yields byte-identical audit journals and
// deterministic metric snapshots at any worker count (see Lane for the
// contract shard callbacks must follow).
type Engine struct {
	clock *Clock

	// mu guards the queue, the seq counter and the free list. The
	// serial hot path is uncontended; it exists so transports and
	// resilience layers may schedule from other goroutines.
	mu    sync.Mutex
	queue eventQueue
	seq   int
	free  *scheduled

	// stop is sticky until consumed: each Stop cancels the current
	// run, or — when called between runs — the next one.
	stop atomic.Bool

	parallelism int

	// directLane is the shared pass-through lane of serial execution;
	// it is stateless, so every serial keyed callback can borrow it.
	directLane Lane
	// laneFree, segGroupOf, segGroups and segLanes are scratch reused
	// across parallel segments. They are touched only on the run
	// goroutine (worker goroutines see their pre-assigned lanes via the
	// happens-before edge of goroutine creation), so they need no lock.
	laneFree   []*Lane
	segGroupOf map[string]int
	segGroups  [][]int
	segLanes   []*Lane
}

// NewEngine returns an engine over the clock.
func NewEngine(clock *Clock) *Engine {
	e := &Engine{clock: clock}
	e.directLane = Lane{eng: e, direct: true}
	return e
}

// Clock returns the engine's clock.
func (e *Engine) Clock() *Clock { return e.clock }

// SetParallelism sets the worker count for same-timestamp sharded
// batches. Values ≤ 1 keep the engine serial (the default). Not safe
// to call while Run is in progress.
func (e *Engine) SetParallelism(n int) {
	if n < 0 {
		n = 0
	}
	e.parallelism = n
}

// Parallelism returns the configured worker count (≤ 1 means serial).
func (e *Engine) Parallelism() int { return e.parallelism }

// Schedule queues fn to run after delay (relative to the current
// virtual time). Non-positive delays run at the current time, after
// already-queued events with the same timestamp. Events scheduled this
// way carry no shard key and execute as serial barriers in parallel
// runs.
//
// Determinism note: calling Schedule from inside a sharded callback
// during a parallel run is safe (the queue is locked) but assigns
// sequence numbers in worker completion order; use Lane.Schedule there
// to keep runs reproducible.
func (e *Engine) Schedule(delay time.Duration, fn func()) {
	e.mu.Lock()
	e.push(delay, "", fn, nil)
	e.mu.Unlock()
}

// ScheduleShard queues a sharded callback: in parallel runs, events at
// the same timestamp with different shard keys may execute
// concurrently, while events sharing a key stay ordered on one worker.
// The shard key must own every piece of mutable state the callback
// touches that is not safe for concurrent use (see Lane). An empty
// shard key degrades to a serial barrier.
func (e *Engine) ScheduleShard(delay time.Duration, shard string, fn func(*Lane)) {
	e.mu.Lock()
	e.push(delay, shard, nil, fn)
	e.mu.Unlock()
}

// push queues one callback; the caller holds e.mu.
func (e *Engine) push(delay time.Duration, shard string, fn func(), lfn func(*Lane)) {
	if delay < 0 {
		delay = 0
	}
	e.seq++
	item := e.acquire()
	item.at = e.clock.Now().Add(delay)
	item.seq = e.seq
	item.shard = shard
	item.fn = fn
	item.lfn = lfn
	heap.Push(&e.queue, item)
}

// acquire pops a recycled scheduled struct or allocates a fresh one.
func (e *Engine) acquire() *scheduled {
	if e.free == nil {
		return &scheduled{}
	}
	item := e.free
	e.free = item.nextFree
	item.nextFree = nil
	return item
}

// release recycles an executed event's struct, dropping closure and
// key references so they can be collected.
func (e *Engine) release(item *scheduled) {
	item.fn = nil
	item.lfn = nil
	item.shard = ""
	item.at = time.Time{}
	item.seq = 0
	e.mu.Lock()
	item.nextFree = e.free
	e.free = item
	e.mu.Unlock()
}

// ScheduleEvery queues fn to run every interval until the predicate
// returns false (checked before each run). Interval must be positive.
func (e *Engine) ScheduleEvery(interval time.Duration, while func() bool, fn func()) {
	if interval <= 0 {
		return
	}
	var tick func()
	tick = func() {
		if while != nil && !while() {
			return
		}
		fn()
		e.Schedule(interval, tick)
	}
	e.Schedule(interval, tick)
}

// ScheduleEveryShard is ScheduleEvery for sharded callbacks: the
// predicate and fn run on the shard's worker, and the next tick is
// rescheduled through the lane so parallel runs stay deterministic.
func (e *Engine) ScheduleEveryShard(interval time.Duration, shard string, while func() bool, fn func(*Lane)) {
	if interval <= 0 {
		return
	}
	var tick func(*Lane)
	tick = func(lane *Lane) {
		if while != nil && !while() {
			return
		}
		fn(lane)
		lane.ScheduleShard(interval, shard, tick)
	}
	e.ScheduleShard(interval, shard, tick)
}

// Stop makes the current Run (or, when called between runs, the next
// one) return ErrStopped. Safe to call from any goroutine, including
// event callbacks. The request is consumed by the Run that observes
// it, so a stopped engine can be run again afterwards.
func (e *Engine) Stop() { e.stop.Store(true) }

// Pending returns the number of queued events.
func (e *Engine) Pending() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.queue.Len()
}

// Run processes events until the queue is empty or the next event lies
// beyond the horizon, advancing the clock as it goes. It returns
// ErrStopped if Stop was called before or during the run. With
// parallelism configured, same-timestamp sharded events execute on the
// worker pool (see SetParallelism).
func (e *Engine) Run(horizon time.Time) error {
	if e.parallelism > 1 {
		return e.runParallel(horizon)
	}
	for {
		if e.stop.CompareAndSwap(true, false) {
			return ErrStopped
		}
		e.mu.Lock()
		if e.queue.Len() == 0 {
			e.mu.Unlock()
			return nil
		}
		next := e.queue[0]
		if next.at.After(horizon) {
			e.mu.Unlock()
			return nil
		}
		heap.Pop(&e.queue)
		e.mu.Unlock()
		e.clock.AdvanceTo(next.at)
		e.execSerial(next)
	}
}

// execSerial runs one event inline; keyed callbacks get a direct
// (pass-through) lane, so serial and parallel runs share one code path
// in callers.
func (e *Engine) execSerial(item *scheduled) {
	fn, lfn := item.fn, item.lfn
	e.release(item)
	if lfn != nil {
		lfn(&e.directLane)
		return
	}
	fn()
}

// scheduled is one queued callback.
type scheduled struct {
	at    time.Time
	seq   int
	shard string
	fn    func()
	lfn   func(*Lane)
	// nextFree links recycled structs (see Engine.acquire).
	nextFree *scheduled
}

// eventQueue is a min-heap ordered by (time, seq).
type eventQueue []*scheduled

func (q eventQueue) Len() int { return len(q) }

func (q eventQueue) Less(i, j int) bool {
	if !q[i].at.Equal(q[j].at) {
		return q[i].at.Before(q[j].at)
	}
	return q[i].seq < q[j].seq
}

func (q eventQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }

func (q *eventQueue) Push(x any) {
	item, ok := x.(*scheduled)
	if !ok {
		return
	}
	*q = append(*q, item)
}

func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	item := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return item
}
