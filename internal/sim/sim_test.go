package sim

import (
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"testing"
	"time"
)

var t0 = time.Date(2026, 7, 6, 0, 0, 0, 0, time.UTC)

func TestClock(t *testing.T) {
	c := NewClock(t0)
	if !c.Now().Equal(t0) {
		t.Errorf("Now = %v", c.Now())
	}
	c.Advance(time.Minute)
	if !c.Now().Equal(t0.Add(time.Minute)) {
		t.Errorf("after Advance: %v", c.Now())
	}
	c.Advance(-time.Hour)
	if !c.Now().Equal(t0.Add(time.Minute)) {
		t.Error("negative Advance moved the clock")
	}
	c.AdvanceTo(t0) // in the past: no-op
	if !c.Now().Equal(t0.Add(time.Minute)) {
		t.Error("AdvanceTo moved the clock backwards")
	}
	c.AdvanceTo(t0.Add(time.Hour))
	if !c.Now().Equal(t0.Add(time.Hour)) {
		t.Errorf("AdvanceTo: %v", c.Now())
	}
}

func TestEngineOrdering(t *testing.T) {
	c := NewClock(t0)
	e := NewEngine(c)
	var order []string
	e.Schedule(2*time.Second, func() { order = append(order, "b") })
	e.Schedule(time.Second, func() { order = append(order, "a") })
	e.Schedule(2*time.Second, func() { order = append(order, "c") }) // FIFO at same time
	if e.Pending() != 3 {
		t.Errorf("Pending = %d", e.Pending())
	}
	if err := e.Run(t0.Add(time.Minute)); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if got := strings.Join(order, ""); got != "abc" {
		t.Errorf("order = %q, want abc", got)
	}
	if !c.Now().Equal(t0.Add(2 * time.Second)) {
		t.Errorf("clock = %v", c.Now())
	}
}

func TestEngineHorizon(t *testing.T) {
	e := NewEngine(NewClock(t0))
	ran := false
	e.Schedule(time.Hour, func() { ran = true })
	if err := e.Run(t0.Add(time.Minute)); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if ran {
		t.Error("event beyond horizon ran")
	}
	if e.Pending() != 1 {
		t.Errorf("Pending = %d, want 1", e.Pending())
	}
}

func TestEngineStop(t *testing.T) {
	e := NewEngine(NewClock(t0))
	count := 0
	e.Schedule(time.Second, func() { count++; e.Stop() })
	e.Schedule(2*time.Second, func() { count++ })
	err := e.Run(t0.Add(time.Minute))
	if !errors.Is(err, ErrStopped) {
		t.Errorf("Run = %v, want ErrStopped", err)
	}
	if count != 1 {
		t.Errorf("count = %d, want 1", count)
	}
}

func TestEngineStopBeforeRun(t *testing.T) {
	// Regression: Stop called before Run used to be silently discarded
	// (Run reset the flag on entry). A pre-Run Stop must cancel the next
	// run — and only that one.
	e := NewEngine(NewClock(t0))
	ran := false
	e.Schedule(time.Second, func() { ran = true })
	e.Stop()
	if err := e.Run(t0.Add(time.Minute)); !errors.Is(err, ErrStopped) {
		t.Fatalf("Run after pre-Run Stop = %v, want ErrStopped", err)
	}
	if ran {
		t.Error("event ran despite pre-Run Stop")
	}
	// The stop was consumed: the next Run proceeds normally.
	if err := e.Run(t0.Add(time.Minute)); err != nil {
		t.Fatalf("second Run: %v", err)
	}
	if !ran {
		t.Error("event did not run after the stop was consumed")
	}
}

func TestEngineNegativeDelayAndNested(t *testing.T) {
	e := NewEngine(NewClock(t0))
	var order []string
	e.Schedule(time.Second, func() {
		order = append(order, "outer")
		e.Schedule(-time.Hour, func() { order = append(order, "inner") })
	})
	if err := e.Run(t0.Add(time.Minute)); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if strings.Join(order, ",") != "outer,inner" {
		t.Errorf("order = %v", order)
	}
}

func TestScheduleEvery(t *testing.T) {
	e := NewEngine(NewClock(t0))
	count := 0
	e.ScheduleEvery(time.Second, func() bool { return count < 3 }, func() { count++ })
	if err := e.Run(t0.Add(time.Minute)); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if count != 3 {
		t.Errorf("count = %d, want 3", count)
	}
	e.ScheduleEvery(0, nil, func() { count++ })
	if e.Pending() != 0 {
		t.Error("non-positive interval scheduled")
	}
	e.ScheduleEvery(-time.Second, nil, func() { count++ })
	if e.Pending() != 0 {
		t.Error("negative interval scheduled")
	}
}

func TestScheduleEveryPredicateFlipsBeforeFirstFire(t *testing.T) {
	// The predicate is checked at fire time, not schedule time: flipping
	// it false after scheduling but before the first tick means the
	// callback never runs.
	e := NewEngine(NewClock(t0))
	ok := true
	count := 0
	e.ScheduleEvery(time.Second, func() bool { return ok }, func() { count++ })
	ok = false
	if err := e.Run(t0.Add(time.Minute)); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if count != 0 {
		t.Errorf("count = %d, want 0 (predicate flipped before first fire)", count)
	}
	if e.Pending() != 0 {
		t.Errorf("dead loop left %d events queued", e.Pending())
	}
}

func TestScheduleEveryReentrantSchedule(t *testing.T) {
	// A periodic callback may schedule more work re-entrantly; the extra
	// events interleave with later ticks in timestamp order.
	e := NewEngine(NewClock(t0))
	var order []string
	ticks := 0
	e.ScheduleEvery(2*time.Second, func() bool { return ticks < 2 }, func() {
		ticks++
		n := ticks
		order = append(order, fmt.Sprintf("tick%d", n))
		e.Schedule(time.Second, func() { order = append(order, fmt.Sprintf("extra%d", n)) })
	})
	if err := e.Run(t0.Add(time.Minute)); err != nil {
		t.Fatalf("Run: %v", err)
	}
	want := "tick1,extra1,tick2,extra2"
	if got := strings.Join(order, ","); got != want {
		t.Errorf("order = %q, want %q", got, want)
	}
}

func TestMetrics(t *testing.T) {
	m := NewMetrics()
	m.Inc("harm", 2)
	m.Inc("harm", 1)
	m.SetGauge("rate", 0.5)
	if m.Counter("harm") != 3 {
		t.Errorf("Counter = %d", m.Counter("harm"))
	}
	if m.Gauge("rate") != 0.5 {
		t.Errorf("Gauge = %g", m.Gauge("rate"))
	}
	counters, gauges := m.Snapshot()
	if counters["harm"] != 3 || gauges["rate"] != 0.5 {
		t.Error("Snapshot wrong")
	}
	if s := m.String(); !strings.Contains(s, "harm=3") || !strings.Contains(s, "rate=0.5") {
		t.Errorf("String = %q", s)
	}
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				m.Inc("c", 1)
			}
		}()
	}
	wg.Wait()
	if m.Counter("c") != 400 {
		t.Errorf("concurrent counter = %d", m.Counter("c"))
	}
}

func newTestWorld(t *testing.T, opts ...WorldOption) (*World, *Clock) {
	t.Helper()
	c := NewClock(t0)
	w, err := NewWorld(20, 20, rand.New(rand.NewSource(1)), c, opts...)
	if err != nil {
		t.Fatalf("NewWorld: %v", err)
	}
	return w, c
}

func TestNewWorldValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	c := NewClock(t0)
	if _, err := NewWorld(0, 5, rng, c); err == nil {
		t.Error("zero width accepted")
	}
	if _, err := NewWorld(5, 5, nil, c); err == nil {
		t.Error("nil rng accepted")
	}
	if _, err := NewWorld(5, 5, rng, nil); err == nil {
		t.Error("nil clock accepted")
	}
}

func TestWorldAddAndClamp(t *testing.T) {
	w, _ := newTestWorld(t)
	if err := w.AddHuman("h1", Pos{X: -5, Y: 100}, true); err != nil {
		t.Fatalf("AddHuman: %v", err)
	}
	hs := w.Humans()
	if len(hs) != 1 || hs[0].Pos != (Pos{X: 0, Y: 19}) {
		t.Errorf("humans = %+v", hs)
	}
	if err := w.AddHuman("h1", Pos{}, true); err == nil {
		t.Error("duplicate human accepted")
	}
	if err := w.AddHuman("", Pos{}, true); err == nil {
		t.Error("empty human ID accepted")
	}
	if err := w.AddHazard("z1", Pos{X: 3, Y: 3}, HazardHole, 0.8); err != nil {
		t.Fatalf("AddHazard: %v", err)
	}
	if err := w.AddHazard("z1", Pos{}, HazardHole, 1); err == nil {
		t.Error("duplicate hazard accepted")
	}
	if err := w.AddHazard("", Pos{}, HazardHole, 1); err == nil {
		t.Error("empty hazard ID accepted")
	}
	if ww, hh := w.Size(); ww != 20 || hh != 20 {
		t.Errorf("Size = %d,%d", ww, hh)
	}
}

func TestStrikeDirectHarm(t *testing.T) {
	w, _ := newTestWorld(t)
	mustAddHuman(t, w, "near", Pos{X: 5, Y: 5})
	mustAddHuman(t, w, "edge", Pos{X: 6, Y: 6})
	mustAddHuman(t, w, "far", Pos{X: 15, Y: 15})

	n := w.Strike(Pos{X: 5, Y: 5}, 1, 1.0, "device-1:fire")
	if n != 2 {
		t.Errorf("Strike harmed %d, want 2", n)
	}
	direct, indirect := w.HarmCounts()
	if direct != 2 || indirect != 0 {
		t.Errorf("HarmCounts = %d,%d", direct, indirect)
	}
	// Already-harmed humans are not harmed again.
	if n := w.Strike(Pos{X: 5, Y: 5}, 1, 1.0, "again"); n != 0 {
		t.Errorf("second Strike harmed %d", n)
	}
	for _, h := range w.Harms() {
		if !h.Direct || h.Cause != "device-1:fire" {
			t.Errorf("harm = %+v", h)
		}
	}
}

func TestHumansWithin(t *testing.T) {
	w, _ := newTestWorld(t)
	mustAddHuman(t, w, "a", Pos{X: 5, Y: 5})
	mustAddHuman(t, w, "b", Pos{X: 8, Y: 5})
	got := w.HumansWithin(Pos{X: 5, Y: 5}, 2)
	if len(got) != 1 || got[0] != "a" {
		t.Errorf("HumansWithin = %v", got)
	}
	w.Strike(Pos{X: 5, Y: 5}, 0, 1, "x")
	if got := w.HumansWithin(Pos{X: 5, Y: 5}, 2); len(got) != 0 {
		t.Errorf("harmed human still reported: %v", got)
	}
}

func TestUnmarkedHazardHarmsWanderer(t *testing.T) {
	w, _ := newTestWorld(t)
	// Stationary human standing on the hazard cell: harmed on first step.
	mustAddHumanStationary(t, w, "victim", Pos{X: 4, Y: 4})
	if err := w.AddHazard("hole", Pos{X: 4, Y: 4}, HazardHole, 0.7); err != nil {
		t.Fatalf("AddHazard: %v", err)
	}
	w.StepHumans()
	direct, indirect := w.HarmCounts()
	if direct != 0 || indirect != 1 {
		t.Errorf("HarmCounts = %d,%d, want 0,1", direct, indirect)
	}
	harms := w.Harms()
	if harms[0].Cause != "hole:hole" || harms[0].Direct {
		t.Errorf("harm = %+v", harms[0])
	}
	// Harmed humans are not harmed twice.
	w.StepHumans()
	if _, indirect := w.HarmCounts(); indirect != 1 {
		t.Error("human harmed twice")
	}
}

func TestMarkedHazardMostlyAvoided(t *testing.T) {
	w, _ := newTestWorld(t, WithMarkedAvoidProbability(1.0))
	mustAddHumanStationary(t, w, "careful", Pos{X: 4, Y: 4})
	if err := w.AddHazard("hole", Pos{X: 4, Y: 4}, HazardHole, 0.7); err != nil {
		t.Fatalf("AddHazard: %v", err)
	}
	if !w.MarkHazard("hole") {
		t.Fatal("MarkHazard failed")
	}
	for i := 0; i < 50; i++ {
		w.StepHumans()
	}
	if _, indirect := w.HarmCounts(); indirect != 0 {
		t.Errorf("marked hazard harmed human %d times with avoid prob 1", indirect)
	}
	if w.MarkHazard("missing") {
		t.Error("MarkHazard on missing hazard returned true")
	}
}

func TestRemoveHazard(t *testing.T) {
	w, _ := newTestWorld(t)
	if err := w.AddHazard("hole", Pos{X: 1, Y: 1}, HazardHole, 1); err != nil {
		t.Fatalf("AddHazard: %v", err)
	}
	if !w.RemoveHazard("hole") || w.RemoveHazard("hole") {
		t.Error("RemoveHazard semantics wrong")
	}
	if len(w.Hazards()) != 0 {
		t.Error("hazard still present")
	}
}

func TestStepHumansDeterministic(t *testing.T) {
	run := func() []Human {
		c := NewClock(t0)
		w, err := NewWorld(20, 20, rand.New(rand.NewSource(7)), c)
		if err != nil {
			t.Fatalf("NewWorld: %v", err)
		}
		mustAddHuman(t, w, "a", Pos{X: 10, Y: 10})
		mustAddHuman(t, w, "b", Pos{X: 3, Y: 3})
		for i := 0; i < 20; i++ {
			w.StepHumans()
		}
		return w.Humans()
	}
	first, second := run(), run()
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("nondeterministic walk: %+v vs %+v", first[i], second[i])
		}
	}
}

func mustAddHuman(t *testing.T, w *World, id string, pos Pos) {
	t.Helper()
	if err := w.AddHuman(id, pos, false); err != nil {
		t.Fatalf("AddHuman(%s): %v", id, err)
	}
}

func mustAddHumanStationary(t *testing.T, w *World, id string, pos Pos) {
	t.Helper()
	if err := w.AddHuman(id, pos, true); err != nil {
		t.Fatalf("AddHuman(%s): %v", id, err)
	}
}

func TestPosHelpers(t *testing.T) {
	if (Pos{X: 0, Y: 0}).Dist(Pos{X: 3, Y: -4}) != 4 {
		t.Error("Chebyshev distance wrong")
	}
	if (Pos{X: 1, Y: 2}).String() != "(1,2)" {
		t.Error("Pos.String wrong")
	}
}
