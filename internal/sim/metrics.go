package sim

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/telemetry"
)

// Metrics is the legacy flat-name metrics facade experiments tally
// outcomes through (harm events, denials, bad-state entries, ...). It
// is now a compatibility shim over a telemetry.Registry: counters and
// gauges written through this API land in the registry, alongside the
// labeled metrics the framework emits directly — one store, one
// exposition endpoint, no double accounting.
type Metrics struct {
	reg *telemetry.Registry
}

// NewMetrics returns a registry-backed metrics facade.
func NewMetrics() *Metrics {
	return &Metrics{reg: telemetry.NewRegistry()}
}

// MetricsOver wraps an existing registry, so experiment tallies and
// framework telemetry share one store (and one /metrics endpoint). A
// nil registry allocates a fresh one.
func MetricsOver(reg *telemetry.Registry) *Metrics {
	if reg == nil {
		reg = telemetry.NewRegistry()
	}
	return &Metrics{reg: reg}
}

// Registry exposes the backing registry for labeled instrumentation
// and exposition.
func (m *Metrics) Registry() *telemetry.Registry {
	if m == nil {
		return nil
	}
	return m.reg
}

// Inc adds delta to the named (unlabeled) counter.
func (m *Metrics) Inc(name string, delta int64) {
	m.reg.Counter(name).Add(delta)
}

// Counter returns the named counter's value, summed across every label
// set registered under the name — Counter("bus.dropped") is loss drops
// plus partition drops.
func (m *Metrics) Counter(name string) int64 {
	return m.reg.CounterTotal(name)
}

// SetGauge records the named (unlabeled) gauge's value.
func (m *Metrics) SetGauge(name string, v float64) {
	m.reg.Gauge(name).Set(v)
}

// Gauge returns the named (unlabeled) gauge's value.
func (m *Metrics) Gauge(name string) float64 {
	return m.reg.GaugeValue(name)
}

// Snapshot returns copies of all counters and gauges. Labeled
// instances appear under flattened keys in canonical form, e.g.
// bus.dropped{cause="loss"}.
func (m *Metrics) Snapshot() (map[string]int64, map[string]float64) {
	counters := make(map[string]int64)
	gauges := make(map[string]float64)
	for _, s := range m.reg.Snapshot() {
		key := s.Name + s.LabelString()
		switch s.Kind {
		case telemetry.KindCounter:
			counters[key] = int64(s.Value)
		case telemetry.KindGauge:
			gauges[key] = s.Value
		}
	}
	return counters, gauges
}

// String renders all counters and gauges deterministically, one per
// line.
func (m *Metrics) String() string {
	counters, gauges := m.Snapshot()
	var lines []string
	for k, v := range counters {
		lines = append(lines, fmt.Sprintf("%s=%d", k, v))
	}
	for k, v := range gauges {
		lines = append(lines, fmt.Sprintf("%s=%g", k, v))
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n")
}
