package sim

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Metrics is a thread-safe registry of named counters and gauges used
// by experiments to tally outcomes (harm events, denials, bad-state
// entries, ...).
type Metrics struct {
	mu       sync.Mutex
	counters map[string]int64
	gauges   map[string]float64
}

// NewMetrics returns an empty registry.
func NewMetrics() *Metrics {
	return &Metrics{
		counters: make(map[string]int64),
		gauges:   make(map[string]float64),
	}
}

// Inc adds delta to the named counter.
func (m *Metrics) Inc(name string, delta int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.counters[name] += delta
}

// Counter returns the named counter's value.
func (m *Metrics) Counter(name string) int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.counters[name]
}

// SetGauge records the named gauge's value.
func (m *Metrics) SetGauge(name string, v float64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.gauges[name] = v
}

// Gauge returns the named gauge's value.
func (m *Metrics) Gauge(name string) float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.gauges[name]
}

// Snapshot returns copies of all counters and gauges.
func (m *Metrics) Snapshot() (map[string]int64, map[string]float64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	counters := make(map[string]int64, len(m.counters))
	for k, v := range m.counters {
		counters[k] = v
	}
	gauges := make(map[string]float64, len(m.gauges))
	for k, v := range m.gauges {
		gauges[k] = v
	}
	return counters, gauges
}

// String renders all metrics deterministically, one per line.
func (m *Metrics) String() string {
	counters, gauges := m.Snapshot()
	var lines []string
	for k, v := range counters {
		lines = append(lines, fmt.Sprintf("%s=%d", k, v))
	}
	for k, v := range gauges {
		lines = append(lines, fmt.Sprintf("%s=%g", k, v))
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n")
}
