// Package sim is the discrete-event simulation substrate the
// experiments run on: a virtual clock, a deterministic event queue, a
// grid world with humans and hazards that accounts for every harm done,
// and a metrics registry.
//
// The paper's devices act in a physical environment ("Skynet cannot
// exist in a pure information domain"); sim provides that environment
// as the closest laptop-scale equivalent — what matters to the
// mechanisms under test is that actions have physical consequences for
// humans, which the world model captures and measures.
package sim

import (
	"sync"
	"time"
)

// Clock is a virtual simulation clock. It only moves when advanced, so
// experiment runs are reproducible and independent of wall time.
type Clock struct {
	mu  sync.Mutex
	now time.Time
}

// NewClock returns a clock starting at the given instant.
func NewClock(start time.Time) *Clock {
	return &Clock{now: start}
}

// Now returns the current virtual time.
func (c *Clock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// Advance moves the clock forward by d (negative durations are
// ignored) and returns the new time.
func (c *Clock) Advance(d time.Duration) time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	if d > 0 {
		c.now = c.now.Add(d)
	}
	return c.now
}

// AdvanceTo moves the clock to t if t is later than now, and returns
// the current time.
func (c *Clock) AdvanceTo(t time.Time) time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	if t.After(c.now) {
		c.now = t
	}
	return c.now
}
