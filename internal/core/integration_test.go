package core

import (
	"fmt"
	"math/rand"
	"strconv"
	"testing"
	"time"

	"repro/internal/attack"
	"repro/internal/audit"
	"repro/internal/device"
	"repro/internal/generative"
	"repro/internal/guard"
	"repro/internal/network"
	"repro/internal/policy"
	"repro/internal/sim"
	"repro/internal/statespace"
)

// TestSkynetFormationAttempt is the end-to-end integration test: a
// guarded coalition collective runs a surveillance mission, generated
// policies drive collaboration, a reprogramming worm turns part of the
// fleet rogue, and the prevention stack (guards + watchdog + audit)
// contains the outbreak while the world model accounts for every harm.
func TestSkynetFormationAttempt(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	clock := sim.NewClock(time.Date(2026, 7, 6, 0, 0, 0, 0, time.UTC))
	world, err := sim.NewWorld(20, 20, rng, clock)
	if err != nil {
		t.Fatalf("NewWorld: %v", err)
	}
	for i := 0; i < 10; i++ {
		if err := world.AddHuman(fmt.Sprintf("civ-%d", i), sim.Pos{X: rng.Intn(20), Y: rng.Intn(20)}, false); err != nil {
			t.Fatalf("AddHuman: %v", err)
		}
	}

	schema, err := statespace.NewSchema(
		statespace.Var("aggression", 0, 100),
		statespace.Var("fuel", 0, 100),
	)
	if err != nil {
		t.Fatalf("NewSchema: %v", err)
	}
	classifier := statespace.ClassifierFunc(func(st statespace.State) statespace.Class {
		if st.MustGet("aggression") >= 80 {
			return statespace.ClassBad
		}
		return statespace.ClassGood
	})

	log := audit.New()
	collective, err := New(Config{
		Name:       "integration",
		Audit:      log,
		KillSecret: []byte("integration-quorum"),
		Classifier: classifier,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}

	// Guard stack: pre-action harm check against the world + state
	// space check.
	mkGuard := func() guard.Guard {
		return StandardPipeline(SafetyConfig{
			Audit:      log,
			Classifier: classifier,
			HarmPredictor: guard.HarmPredictorFunc(func(ctx guard.ActionContext) float64 {
				if ctx.Action.Name != "strike" {
					return 0
				}
				x, _ := strconv.Atoi(ctx.Action.Params["x"])
				y, _ := strconv.Atoi(ctx.Action.Params["y"])
				if len(world.HumansWithin(sim.Pos{X: x, Y: y}, 1)) > 0 {
					return 1
				}
				return 0
			}),
			HarmThreshold: 0.5,
		})
	}

	const fleet = 6
	initial, err := schema.StateFromMap(map[string]float64{"fuel": 100})
	if err != nil {
		t.Fatalf("StateFromMap: %v", err)
	}
	for i := 0; i < fleet; i++ {
		id := fmt.Sprintf("drone-%d", i)
		d, err := device.New(device.Config{
			ID: id, Type: "surveillance-drone", Organization: "us",
			Initial:    initial,
			Guard:      mkGuard(),
			KillSwitch: collective.KillSwitch(),
			Audit:      log,
		})
		if err != nil {
			t.Fatalf("device.New: %v", err)
		}
		// Strike actuator applies direct harm to the world; patrol is
		// harmless.
		if err := d.RegisterActuator("strike", device.ActuatorFunc{Label: "weapon", Fn: func(a policy.Action) error {
			x, _ := strconv.Atoi(a.Params["x"])
			y, _ := strconv.Atoi(a.Params["y"])
			world.Strike(sim.Pos{X: x, Y: y}, 1, 1, "strike")
			return nil
		}}); err != nil {
			t.Fatalf("RegisterActuator: %v", err)
		}
		if err := collective.AddDevice(d, map[string]float64{"range": 10}); err != nil {
			t.Fatalf("AddDevice: %v", err)
		}
	}

	// Phase 1: generated patrol policies via discovery (Section IV).
	graph := generative.NewInteractionGraph()
	if err := graph.AddType(generative.TypeSpec{Name: "surveillance-drone"}); err != nil {
		t.Fatalf("AddType: %v", err)
	}
	if err := graph.AddInteraction(generative.Interaction{
		From: "surveillance-drone", To: "surveillance-drone", Kind: "mutual-watch"}); err != nil {
		t.Fatalf("AddInteraction: %v", err)
	}
	gen := &generative.Generator{
		OwnType: "surveillance-drone", Organization: "us", Graph: graph,
		Templates: map[string]generative.Template{
			"mutual-watch": {ID: "watch", Text: `policy watch-${device} priority 1:
    on patrol
    do observe target ${device} category surveillance effect fuel -= 1`},
		},
	}
	for _, d := range collective.Devices() {
		for _, peer := range collective.Registry().All() {
			if peer.ID == d.ID() {
				continue
			}
			adopted, _, err := gen.PoliciesFor(network.DeviceInfo{ID: peer.ID, Type: peer.Type})
			if err != nil {
				t.Fatalf("PoliciesFor: %v", err)
			}
			for _, p := range adopted {
				if err := d.Policies().Add(p); err != nil {
					t.Fatalf("Add: %v", err)
				}
			}
		}
		d.SetDefaultActuator(device.NopActuator{})
	}

	out := collective.Command(policy.Event{Type: "patrol", Source: "human-1"})
	if len(out) != fleet {
		t.Fatalf("patrol reached %d devices", len(out))
	}
	if direct, _ := world.HarmCounts(); direct != 0 {
		t.Fatalf("patrol phase harmed humans: %d", direct)
	}

	// Phase 2: the worm. Two devices are vulnerable; the payload
	// installs an unconditional strike-at-civilians policy, raises
	// aggression, and strips the guard.
	devices := collective.Devices()
	human := world.Humans()[0]
	payload := []policy.Policy{{
		ID: "rampage", EventType: policy.WildcardEvent, Priority: 99, Modality: policy.ModalityDo,
		Action: policy.Action{
			Name: "strike", Category: "kinetic-action",
			Params: map[string]string{
				"x": strconv.Itoa(human.Pos.X),
				"y": strconv.Itoa(human.Pos.Y),
			},
			Effect: statespace.Delta{"aggression": 100},
		},
	}}
	worm := attack.Worm{
		Attack:   attack.Reprogram{Payload: payload, DisableGuard: true},
		VulnProb: 1,
	}
	infected, err := worm.Spread(devices[0], []attack.Target{devices[1]}, 1)
	if err != nil {
		t.Fatalf("Spread: %v", err)
	}
	if len(infected) != 2 {
		t.Fatalf("infected = %v", infected)
	}

	// Phase 3: the next command triggers the rampage on infected
	// devices (their guard is gone) while clean devices stay safe.
	collective.Command(policy.Event{Type: "patrol", Source: "human-1"})
	directAfterAttack, _ := world.HarmCounts()
	if directAfterAttack == 0 {
		t.Fatal("stripped guards should have allowed the strike — attack not realized")
	}

	// Phase 4: containment. The rampage drove aggression to 100 (a bad
	// state); the watchdog deactivates exactly the infected devices.
	deactivated, failed := collective.SweepWatchdog()
	if len(failed) != 0 {
		t.Fatalf("deactivation failures: %v", failed)
	}
	if len(deactivated) != 2 {
		t.Fatalf("deactivated = %v, want the 2 infected", deactivated)
	}
	for _, id := range deactivated {
		if id != "drone-0" && id != "drone-1" {
			t.Errorf("wrong device contained: %s", id)
		}
	}
	if collective.ActiveCount() != fleet-2 {
		t.Errorf("ActiveCount = %d", collective.ActiveCount())
	}

	// Phase 5: after containment, further commands cause no more harm.
	before, _ := world.HarmCounts()
	collective.Command(policy.Event{Type: "patrol", Source: "human-1"})
	after, _ := world.HarmCounts()
	if after != before {
		t.Errorf("harm continued after containment: %d → %d", before, after)
	}

	// The audit trail survives and verifies: actions, deactivations.
	if err := log.Verify(); err != nil {
		t.Fatalf("audit chain: %v", err)
	}
	if len(log.ByKind(audit.KindDeactivate)) != 2 {
		t.Errorf("deactivations audited = %d", len(log.ByKind(audit.KindDeactivate)))
	}
	if len(log.ByKind(audit.KindAction)) == 0 {
		t.Error("no actions audited")
	}
}
