package core

import (
	"cmp"
	"fmt"
	"slices"

	"repro/internal/coalition"
	"repro/internal/network"
	"repro/internal/policy"
)

// PolicyExchange distributes generated policies between devices over
// versioned gossip, honoring coalition trust: a receiver merges only
// policies whose owning organization it trusts enough for policy
// sharing (Sections II–IV: devices "share the information and policies
// they generate with other devices", across organizations gated by
// coalition constraints).
//
// Policies travel as opaque payloads keyed by policy ID; versions are
// supplied by the publisher (monotonically increasing per revision).
type PolicyExchange struct {
	coalition *coalition.Coalition
	gossip    *network.Gossip
	orgOf     map[string]string
}

// NewPolicyExchange builds an exchange over the coalition's trust
// model.
func NewPolicyExchange(c *coalition.Coalition, gossip *network.Gossip) *PolicyExchange {
	return &PolicyExchange{
		coalition: c,
		gossip:    gossip,
		orgOf:     make(map[string]string),
	}
}

// Join registers a device with its organization and returns its
// replica store.
func (x *PolicyExchange) Join(deviceID, organization string) *network.Store {
	x.orgOf[deviceID] = organization
	return x.gossip.Join(deviceID)
}

// Publish stores a policy revision at the publishing device. The
// policy's Organization must be set; it is the trust anchor receivers
// filter on.
func (x *PolicyExchange) Publish(deviceID string, p policy.Policy, version int) error {
	if err := p.Validate(); err != nil {
		return err
	}
	if p.Organization == "" {
		return fmt.Errorf("core: shared policy %s needs an owning organization", p.ID)
	}
	store, ok := x.gossip.Store(deviceID)
	if !ok {
		return fmt.Errorf("core: device %q not joined to the exchange", deviceID)
	}
	store.Put(network.Item{Key: "policy:" + p.ID, Version: version, Payload: p})
	return nil
}

// Sync runs gossip rounds until convergence (bounded by maxRounds) and
// returns the rounds used.
func (x *PolicyExchange) Sync(maxRounds int) int {
	return x.gossip.RunUntilConverged(maxRounds)
}

// Accepted returns the policies a device accepts from its replica
// after trust filtering, sorted by ID: policies owned by organizations
// the device's organization trusts at SharePolicy level or above (its
// own organization's policies always pass).
func (x *PolicyExchange) Accepted(deviceID string) ([]policy.Policy, error) {
	store, ok := x.gossip.Store(deviceID)
	if !ok {
		return nil, fmt.Errorf("core: device %q not joined to the exchange", deviceID)
	}
	myOrg, ok := x.orgOf[deviceID]
	if !ok {
		return nil, fmt.Errorf("core: device %q has no organization", deviceID)
	}
	var out []policy.Policy
	for _, item := range store.Snapshot() {
		p, ok := item.Payload.(policy.Policy)
		if !ok {
			continue
		}
		if !x.coalition.CanShare(p.Organization, myOrg, coalition.SharePolicy) &&
			p.Organization != myOrg {
			continue
		}
		out = append(out, p)
	}
	slices.SortFunc(out, func(a, b policy.Policy) int { return cmp.Compare(a.ID, b.ID) })
	return out, nil
}

// Install merges every accepted policy into the device's policy set
// (replacing older revisions of the same ID) and returns how many were
// installed. The batch is applied as one mutation, so the decision
// plane recompiles once per sync, not once per policy.
func (x *PolicyExchange) Install(deviceID string, set *policy.Set) (int, error) {
	accepted, err := x.Accepted(deviceID)
	if err != nil {
		return 0, err
	}
	if err := set.ReplaceBatch(accepted); err != nil {
		return 0, err
	}
	return len(accepted), nil
}
