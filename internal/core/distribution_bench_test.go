package core

import (
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"testing"
	"time"

	"repro/internal/bundle"
	"repro/internal/device"
	"repro/internal/network"
	"repro/internal/policy"
	"repro/internal/policylang"
	"repro/internal/sim"
	"repro/internal/statespace"
	"repro/internal/telemetry"
)

// benchFleetSize reads DIST_BENCH_FLEET; the default keeps `make
// bench` tolerable while `make bench-bundle` raises it to the
// 100k-device fan-out measurement.
func benchFleetSize() int {
	if s := os.Getenv("DIST_BENCH_FLEET"); s != "" {
		if n, err := strconv.Atoi(s); err == nil && n > 0 {
			return n
		}
	}
	return 20000
}

type fanoutWorld struct {
	engine *sim.Engine
	clock  *sim.Clock
	dist   *Distributor
	reg    *telemetry.Registry
	fleet  int
	desire [][]policy.Policy
	rev    int
}

// buildFanoutWorld constructs a two-root fleet (half us, half uk) with
// every device enrolled on its own org's root. workers==0 means no
// engine: the synchronous per-device fan-out loop over an inline bus
// (the pre-sharding shape). workers>0 wires the engine into both the
// bus and the distributor, so fan-out runs as sharded batch events.
func buildFanoutWorld(b *testing.B, fleet, workers int) *fanoutWorld {
	b.Helper()
	w := &fanoutWorld{clock: sim.NewClock(time.Date(2026, 8, 7, 0, 0, 0, 0, time.UTC)), fleet: fleet}
	w.reg = telemetry.NewRegistry()
	busOpts := []network.BusOption{}
	if workers > 0 {
		w.engine = sim.NewEngine(w.clock)
		w.engine.SetParallelism(workers)
		busOpts = append(busOpts, network.WithEngine(w.engine))
	}
	bus := network.NewBus(rand.New(rand.NewSource(1)), busOpts...)
	collective, err := New(Config{
		Name:       "bench",
		KillSecret: []byte("bench-secret"),
		Bus:        bus,
		Telemetry:  w.reg,
	})
	if err != nil {
		b.Fatal(err)
	}
	usKey := bundle.HMACKey{ID: "us-root", Secret: []byte("us bench secret")}
	ukKey := bundle.HMACKey{ID: "uk-root", Secret: []byte("uk bench secret")}
	w.dist, err = NewDistributor(DistributorConfig{
		Collective: collective,
		Roots: []RootConfig{
			{Org: "us", Signer: usKey},
			{Org: "uk", Signer: ukKey},
		},
		Telemetry: w.reg,
		Clock:     w.clock.Now,
		Engine:    w.engine,
	})
	if err != nil {
		b.Fatal(err)
	}
	ring := bundle.NewKeyRing().
		Add(usKey.ID, usKey, bundle.Scope{Org: "us"}).
		Add(ukKey.ID, ukKey, bundle.Scope{Org: "uk"})
	schema, err := statespace.NewSchema(statespace.Var("heat", 0, 100))
	if err != nil {
		b.Fatal(err)
	}
	initial, err := schema.StateFromMap(map[string]float64{"heat": 20})
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < fleet; i++ {
		org := "us"
		if i%2 == 1 {
			org = "uk"
		}
		id := fmt.Sprintf("%s-%06d", org, i)
		d, err := device.New(device.Config{
			ID: id, Type: "drone", Organization: org,
			Initial:    initial,
			KillSwitch: collective.KillSwitch(),
		})
		if err != nil {
			b.Fatal(err)
		}
		if err := collective.AddDevice(d, nil); err != nil {
			b.Fatal(err)
		}
		if err := w.dist.EnrollRoots(id, ring, org); err != nil {
			b.Fatal(err)
		}
	}
	// Two alternating policy sets per org so every revision carries a
	// real (non-empty) delta; compiled once, outside the timed loop.
	for _, tag := range []string{"alpha", "beta"} {
		var src string
		for i := 0; i < 6; i++ {
			src += fmt.Sprintf(
				"policy us.bench%02d priority %d:\n    on tick\n    when intensity > 0\n    do adjust target %s category surveillance\n",
				i, i+1, tag)
		}
		pols, err := policylang.CompileSource(src, policy.OriginHuman)
		if err != nil {
			b.Fatal(err)
		}
		w.desire = append(w.desire, pols)
	}
	return w
}

// publishAndDrain cuts one us-root revision and drains the fan-out to
// every subscriber: inline for the synchronous shape, via engine.Run
// for the sharded shape (the run also processes the resulting acks).
func (w *fanoutWorld) publishAndDrain(b *testing.B) {
	b.Helper()
	w.rev++
	desired := w.desire[w.rev%len(w.desire)]
	if w.engine == nil {
		if _, err := w.dist.Publish(desired); err != nil {
			b.Fatal(err)
		}
		return
	}
	var pubErr error
	w.engine.Schedule(0, func() {
		_, pubErr = w.dist.Publish(desired)
	})
	if err := w.engine.Run(w.clock.Now().Add(time.Millisecond)); err != nil {
		b.Fatal(err)
	}
	if pubErr != nil {
		b.Fatal(pubErr)
	}
}

// verify fails the benchmark if a run was degenerate: every us-root
// subscriber must have activated every published revision.
func (w *fanoutWorld) verify(b *testing.B) {
	b.Helper()
	if lag := len(w.dist.LaggingRoot("us")); lag != 0 {
		b.Fatalf("%d devices lagging after drain", lag)
	}
	if got := w.reg.CounterTotal("bundle.activated"); got < int64(w.rev)*int64(w.fleet/2) {
		b.Fatalf("activations %d < published %d × %d subscribers", got, w.rev, w.fleet/2)
	}
}

// benchFanout measures one publish fan-out to the us half of the
// fleet, end to end (encode, push, device verify+activate, ack,
// ledger): workers==0 is the synchronous per-device loop baseline,
// workers>0 the sharded batch events. Wire-cache hits make the encode
// cost per distinct acked base, not per device, in both shapes.
func benchFanout(b *testing.B, workers int) {
	w := buildFanoutWorld(b, benchFleetSize(), workers)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.publishAndDrain(b)
	}
	b.StopTimer()
	w.verify(b)
}

func BenchmarkDistributorFanoutSerial(b *testing.B) { benchFanout(b, 0) }
func BenchmarkDistributorFanout1(b *testing.B)      { benchFanout(b, 1) }
func BenchmarkDistributorFanout2(b *testing.B)      { benchFanout(b, 2) }
func BenchmarkDistributorFanout4(b *testing.B)      { benchFanout(b, 4) }
