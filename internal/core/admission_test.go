package core

import (
	"math/rand"
	"strings"
	"testing"
	"time"

	"repro/internal/admission"
	"repro/internal/audit"
	"repro/internal/device"
	"repro/internal/network"
	"repro/internal/policy"
	"repro/internal/resilience"
	"repro/internal/sim"
	"repro/internal/telemetry"
)

// TestDispatcherAdmissionShedsAreAccounted drives the dispatcher past
// a per-target rate limit and checks the shed is typed, counted,
// audited with the delivery's trace ID, and never reaches the bus.
func TestDispatcherAdmissionShedsAreAccounted(t *testing.T) {
	log := audit.New()
	metrics := sim.NewMetrics()
	now := time.Unix(0, 0)
	ctrl, err := admission.New(admission.Config{
		Rate: 1, Burst: 1,
		Now:     func() time.Time { return now },
		Metrics: metrics.Registry(),
	})
	if err != nil {
		t.Fatal(err)
	}

	bus := network.NewBus(rand.New(rand.NewSource(1)), network.WithMetrics(metrics))
	c := newCollective(t, func(cfg *Config) {
		cfg.Audit = log
		cfg.Bus = bus
	})
	s := coreSchema(t)
	initial, err := s.StateFromMap(map[string]float64{"heat": 10, "fuel": 50})
	if err != nil {
		t.Fatal(err)
	}
	d, err := device.New(device.Config{
		ID: "d1", Type: "drone", Initial: initial,
		KillSwitch: c.KillSwitch(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.AddDevice(d, nil); err != nil {
		t.Fatal(err)
	}

	dispatcher := &Dispatcher{
		Collective: c,
		Sender: &network.ReliableSender{
			Bus:   bus,
			Retry: resilience.Retry{MaxAttempts: 2, Sleep: func(time.Duration) {}},
		},
		Metrics:   metrics,
		Tracer:    telemetry.NewTracer(),
		Admission: ctrl,
		Audit:     log,
	}

	// Burst 1, frozen clock: the first command spends the only token,
	// the second is shed before it touches the bus.
	if sent, failed := dispatcher.Command(policy.Event{Type: "task"}); sent != 1 || failed != 0 {
		t.Fatalf("first command: sent=%d failed=%d", sent, failed)
	}
	if sent, failed := dispatcher.Command(policy.Event{Type: "task"}); sent != 0 || failed != 1 {
		t.Fatalf("second command: sent=%d failed=%d", sent, failed)
	}

	// The shed is typed and counted, and the bus never saw it.
	counters, _ := metrics.Snapshot()
	if counters[`dispatch.shed{cause="rate_limited"}`] != 1 {
		t.Errorf("dispatch.shed counters = %v, want rate_limited=1", counters)
	}
	if got := metrics.Counter("bus.sent"); got != 1 {
		t.Errorf("bus.sent = %d, want 1 (shed delivery must not reach the bus)", got)
	}

	// The decision is audited with target, cause, and the trace ID.
	entries := log.ByKind(audit.KindAdmission)
	if len(entries) != 1 {
		t.Fatalf("admission audit entries = %d, want 1", len(entries))
	}
	e := entries[0]
	if e.Context["target"] != "d1" || e.Context["cause"] != "rate_limited" {
		t.Errorf("audit context = %v", e.Context)
	}
	if !strings.Contains(e.Detail, "shed") {
		t.Errorf("audit detail = %q", e.Detail)
	}
	if e.Context["trace"] == "" {
		t.Error("shed audit entry carries no trace ID")
	}

	// The controller's own books balance.
	if err := ctrl.CheckConservation(); err != nil {
		t.Error(err)
	}
}

// TestOrchestratorAdmissionGate checks the sharded command loop
// consults the admission controller per tick and accounts skipped
// targets under core.command_shed.
func TestOrchestratorAdmissionGate(t *testing.T) {
	log := audit.New()
	metrics := sim.NewMetrics()
	clock := sim.NewClock(time.Unix(0, 0))
	engine := sim.NewEngine(clock)
	ctrl, err := admission.New(admission.Config{
		Rate: 1, Burst: 2, Now: clock.Now, Metrics: metrics.Registry(),
	})
	if err != nil {
		t.Fatal(err)
	}

	c := newCollective(t, func(cfg *Config) { cfg.Audit = log })
	s := coreSchema(t)
	initial, err := s.StateFromMap(map[string]float64{"heat": 10, "fuel": 50})
	if err != nil {
		t.Fatal(err)
	}
	d, err := device.New(device.Config{
		ID: "d1", Type: "drone", Initial: initial,
		KillSwitch: c.KillSwitch(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Policies().Add(policy.Policy{
		ID: "work", EventType: "task", Modality: policy.ModalityDo,
		Action: policy.Action{Name: "work"},
	}); err != nil {
		t.Fatal(err)
	}
	if err := c.AddDevice(d, nil); err != nil {
		t.Fatal(err)
	}

	o, err := NewOrchestrator(c, engine)
	if err != nil {
		t.Fatal(err)
	}
	o.Metrics = metrics
	o.Admission = ctrl
	o.Audit = log
	// Ticks every 100ms with rate 1/s, burst 2: over 1s, 10 ticks
	// offer, ~3 admit (burst + refill), the rest shed.
	o.CommandEverySharded(100*time.Millisecond, nil,
		func() policy.Event { return policy.Event{Type: "task"} })
	if err := engine.Run(clock.Now().Add(time.Second)); err != nil {
		t.Fatal(err)
	}

	counters, _ := metrics.Snapshot()
	shed := counters[`core.command_shed{cause="rate_limited"}`]
	if shed == 0 {
		t.Fatalf("no command sheds recorded; counters = %v", counters)
	}
	counts := ctrl.Counts()
	offered := admission.Total(counts.Offered)
	admitted := admission.Total(counts.Admitted)
	if offered != admitted+shed {
		t.Errorf("offered=%d admitted=%d shed=%d — books do not balance",
			offered, admitted, shed)
	}
	if len(log.ByKind(audit.KindAdmission)) == 0 {
		t.Error("orchestrator sheds were not audited")
	}
	if err := ctrl.CheckConservation(); err != nil {
		t.Error(err)
	}
}
