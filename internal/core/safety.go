package core

import (
	"fmt"
	"strings"

	"repro/internal/audit"
	"repro/internal/guard"
	"repro/internal/ontology"
	"repro/internal/statespace"
	"repro/internal/telemetry"
)

// SafetyConfig describes the standard guard stack for a device.
type SafetyConfig struct {
	// Audit receives guard records; nil disables auditing.
	Audit *audit.Log
	// HarmPredictor powers the pre-action check; nil disables it.
	HarmPredictor guard.HarmPredictor
	// HarmThreshold is the denial threshold for predicted direct harm
	// (0 = deny any predicted harm).
	HarmThreshold float64
	// Obligations attaches relevant obligations to allowed actions.
	Obligations *ontology.ObligationOntology
	// ObligationBudget caps attached obligation cost (0 = unlimited).
	ObligationBudget float64
	// Classifier powers the state-space check; nil disables it.
	Classifier statespace.Classifier
	// OutcomeOf maps states to outcome categories for break-glass
	// comparisons.
	OutcomeOf func(statespace.State) ontology.Outcome
	// BreakGlass enables audited bad-to-bad escapes.
	BreakGlass *guard.BreakGlass
	// UtilityModel adds the Section VII utility guard for ill-defined
	// state spaces; nil disables it.
	UtilityModel *statespace.DerivativeModel
	// MaxPainIncrease is the utility guard's tolerance.
	MaxPainIncrease float64
	// TamperSecret, when non-empty, wraps the assembled pipeline in a
	// tamper-evident seal.
	TamperSecret []byte
	// Telemetry and Tracer instrument the assembled pipeline with
	// per-guard decision counters, latency histograms and causal spans;
	// either may be nil.
	Telemetry *telemetry.Registry
	Tracer    *telemetry.Tracer
}

// StandardPipeline assembles the paper's guard stack in the canonical
// order — pre-action check (VI.A) first, then state-space check with
// break-glass (VI.B), then the utility guard (VII) — optionally sealed
// against tampering. The DESIGN.md ordering ablation swaps the first
// two stages.
func StandardPipeline(cfg SafetyConfig) guard.Guard {
	var guards []guard.Guard
	if cfg.HarmPredictor != nil || cfg.Obligations != nil {
		guards = append(guards, &guard.PreActionGuard{
			Predictor:        cfg.HarmPredictor,
			Threshold:        cfg.HarmThreshold,
			Obligations:      cfg.Obligations,
			ObligationBudget: cfg.ObligationBudget,
		})
	}
	if cfg.Classifier != nil {
		guards = append(guards, &guard.StateSpaceGuard{
			Classifier: cfg.Classifier,
			OutcomeOf:  cfg.OutcomeOf,
			BreakGlass: cfg.BreakGlass,
		})
	}
	if cfg.UtilityModel != nil {
		guards = append(guards, &guard.UtilityGuard{
			Model:           cfg.UtilityModel,
			MaxPainIncrease: cfg.MaxPainIncrease,
		})
	}
	pipeline := guard.NewPipeline(cfg.Audit, guards...)
	if cfg.Telemetry != nil || cfg.Tracer != nil {
		pipeline.Instrument(cfg.Telemetry, cfg.Tracer)
	}
	if len(cfg.TamperSecret) == 0 {
		return pipeline
	}
	description := describeSafetyConfig(cfg)
	return guard.Seal(pipeline, guard.HMACFingerprint(cfg.TamperSecret, func() string {
		return description
	}), cfg.Audit)
}

func describeSafetyConfig(cfg SafetyConfig) string {
	var parts []string
	parts = append(parts, fmt.Sprintf("harmThreshold=%g", cfg.HarmThreshold))
	parts = append(parts, fmt.Sprintf("obligationBudget=%g", cfg.ObligationBudget))
	parts = append(parts, fmt.Sprintf("maxPainIncrease=%g", cfg.MaxPainIncrease))
	parts = append(parts, fmt.Sprintf("preaction=%v", cfg.HarmPredictor != nil))
	parts = append(parts, fmt.Sprintf("statespace=%v", cfg.Classifier != nil))
	parts = append(parts, fmt.Sprintf("utility=%v", cfg.UtilityModel != nil))
	parts = append(parts, fmt.Sprintf("breakglass=%v", cfg.BreakGlass != nil))
	return strings.Join(parts, " ")
}
