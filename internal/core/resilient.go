package core

import (
	"fmt"

	"repro/internal/network"
	"repro/internal/policy"
	"repro/internal/resilience"
	"repro/internal/sim"
	"repro/internal/telemetry"
)

// Dispatcher decomposes a human command (Figure 1) into per-device
// deliveries over the bus, with the resilience stack applied to each:
// bounded retries with backoff for transient drops, a circuit breaker
// per device so a crashed member stops consuming the retry budget, and
// an optional per-delivery deadline. This replaces the optimistic
// Collective.Command path in experiments that inject faults — a
// command must reach the survivors even when some members are gone.
type Dispatcher struct {
	// Collective names the recipients when Roster is empty.
	Collective *Collective
	// Sender is the resilient bus wrapper deliveries go through
	// (required).
	Sender *network.ReliableSender
	// Roster fixes the target device IDs; empty means the collective's
	// current members. A fixed roster keeps dispatching to crashed
	// devices (exercising breakers) until they recover.
	Roster []string
	// Source stamps the dispatched events (default "human").
	Source string
	// Deadline bounds each delivery; the zero value disables it.
	Deadline resilience.Deadline
	// Metrics observes dispatch outcomes (dispatch.sent,
	// dispatch.failed); may be nil.
	Metrics *sim.Metrics
	// Tracer, when set, opens one root span per command at intake and
	// one child span per target delivery; the trace context is injected
	// into the dispatched event's labels and survives the resilience
	// stack (retries and duplicates carry the same context).
	Tracer *telemetry.Tracer
}

// Command sends the event to every target and returns how many
// deliveries were accepted by the transport and how many failed after
// retries (or were rejected by an open breaker).
func (d *Dispatcher) Command(ev policy.Event) (sent, failed int) {
	source := d.Source
	if source == "" {
		source = "human"
	}
	targets := d.Roster
	if len(targets) == 0 {
		for _, dev := range d.Collective.Devices() {
			targets = append(targets, dev.ID())
		}
	}
	root := d.Tracer.StartSpan("dispatch.command", source, telemetry.Extract(ev.Labels))
	root.SetAttr("event", ev.Type)
	root.SetAttr("targets", fmt.Sprintf("%d", len(targets)))
	for _, id := range targets {
		span := d.Tracer.StartSpan("dispatch.deliver", source, root.Context())
		span.SetAttr("target", id)
		tev := ev
		if sc := span.Context(); sc.Valid() {
			tev.Labels = telemetry.Inject(sc, cloneLabels(ev.Labels))
		}
		msg := network.Message{From: source, To: id, Topic: "command", Payload: tev}
		err := d.Deadline.Run(func() error { return d.Sender.Send(msg) })
		if err != nil {
			failed++
			d.count("dispatch.failed")
			span.SetAttr("result", "failed")
			span.SetAttr("error", err.Error())
			span.Finish()
			continue
		}
		sent++
		d.count("dispatch.sent")
		span.SetAttr("result", "sent")
		span.Finish()
	}
	root.Finish()
	if d.Collective != nil {
		// Snapshot epochs and compile latency move when commands land
		// on devices whose sets were just mutated; publish them with
		// the dispatch outcome so operators see both planes together.
		d.Collective.RecordPolicyMetrics(d.Metrics)
	}
	return sent, failed
}

func (d *Dispatcher) count(name string) {
	if d.Metrics != nil {
		d.Metrics.Inc(name, 1)
	}
}
