package core

import (
	"repro/internal/network"
	"repro/internal/policy"
	"repro/internal/resilience"
	"repro/internal/sim"
)

// Dispatcher decomposes a human command (Figure 1) into per-device
// deliveries over the bus, with the resilience stack applied to each:
// bounded retries with backoff for transient drops, a circuit breaker
// per device so a crashed member stops consuming the retry budget, and
// an optional per-delivery deadline. This replaces the optimistic
// Collective.Command path in experiments that inject faults — a
// command must reach the survivors even when some members are gone.
type Dispatcher struct {
	// Collective names the recipients when Roster is empty.
	Collective *Collective
	// Sender is the resilient bus wrapper deliveries go through
	// (required).
	Sender *network.ReliableSender
	// Roster fixes the target device IDs; empty means the collective's
	// current members. A fixed roster keeps dispatching to crashed
	// devices (exercising breakers) until they recover.
	Roster []string
	// Source stamps the dispatched events (default "human").
	Source string
	// Deadline bounds each delivery; the zero value disables it.
	Deadline resilience.Deadline
	// Metrics observes dispatch outcomes (dispatch.sent,
	// dispatch.failed); may be nil.
	Metrics *sim.Metrics
}

// Command sends the event to every target and returns how many
// deliveries were accepted by the transport and how many failed after
// retries (or were rejected by an open breaker).
func (d *Dispatcher) Command(ev policy.Event) (sent, failed int) {
	source := d.Source
	if source == "" {
		source = "human"
	}
	targets := d.Roster
	if len(targets) == 0 {
		for _, dev := range d.Collective.Devices() {
			targets = append(targets, dev.ID())
		}
	}
	for _, id := range targets {
		msg := network.Message{From: source, To: id, Topic: "command", Payload: ev}
		err := d.Deadline.Run(func() error { return d.Sender.Send(msg) })
		if err != nil {
			failed++
			d.count("dispatch.failed")
			continue
		}
		sent++
		d.count("dispatch.sent")
	}
	if d.Collective != nil {
		// Snapshot epochs and compile latency move when commands land
		// on devices whose sets were just mutated; publish them with
		// the dispatch outcome so operators see both planes together.
		d.Collective.RecordPolicyMetrics(d.Metrics)
	}
	return sent, failed
}

func (d *Dispatcher) count(name string) {
	if d.Metrics != nil {
		d.Metrics.Inc(name, 1)
	}
}
