package core

import (
	"fmt"

	"repro/internal/admission"
	"repro/internal/audit"
	"repro/internal/network"
	"repro/internal/policy"
	"repro/internal/resilience"
	"repro/internal/sim"
	"repro/internal/telemetry"
)

// Dispatcher decomposes a human command (Figure 1) into per-device
// deliveries over the bus, with the resilience stack applied to each:
// bounded retries with backoff for transient drops, a circuit breaker
// per device so a crashed member stops consuming the retry budget, and
// an optional per-delivery deadline. This replaces the optimistic
// Collective.Command path in experiments that inject faults — a
// command must reach the survivors even when some members are gone.
type Dispatcher struct {
	// Collective names the recipients when Roster is empty.
	Collective *Collective
	// Sender is the resilient bus wrapper deliveries go through
	// (required).
	Sender *network.ReliableSender
	// Roster fixes the target device IDs; empty means the collective's
	// current members. A fixed roster keeps dispatching to crashed
	// devices (exercising breakers) until they recover.
	Roster []string
	// Source stamps the dispatched events (default "human").
	Source string
	// Deadline bounds each delivery; the zero value disables it.
	Deadline resilience.Deadline
	// Metrics observes dispatch outcomes (dispatch.sent,
	// dispatch.failed); may be nil.
	Metrics *sim.Metrics
	// Tracer, when set, opens one root span per command at intake and
	// one child span per target delivery; the trace context is injected
	// into the dispatched event's labels and survives the resilience
	// stack (retries and duplicates carry the same context).
	Tracer *telemetry.Tracer
	// Admission, when set, gates each per-target delivery before it
	// enters the resilience stack: a shed target fails fast with a typed
	// cause (dispatch.shed{cause}) instead of burning retry budget, and
	// the decision is audited with the delivery's trace ID.
	Admission *admission.Controller
	// Audit, when set with Admission, records every shed decision as a
	// KindAdmission entry carrying the target, cause and trace ID.
	Audit *audit.Log
}

// Command sends the event to every target and returns how many
// deliveries were accepted by the transport and how many failed after
// retries (or were rejected by an open breaker).
func (d *Dispatcher) Command(ev policy.Event) (sent, failed int) {
	source := d.Source
	if source == "" {
		source = "human"
	}
	targets := d.Roster
	if len(targets) == 0 {
		for _, dev := range d.Collective.Devices() {
			targets = append(targets, dev.ID())
		}
	}
	root := d.Tracer.StartSpan("dispatch.command", source, telemetry.Extract(ev.Labels))
	root.SetAttr("event", ev.Type)
	root.SetAttr("targets", fmt.Sprintf("%d", len(targets)))
	for _, id := range targets {
		span := d.Tracer.StartSpan("dispatch.deliver", source, root.Context())
		span.SetAttr("target", id)
		if d.Admission != nil {
			if err := d.Admission.Allow(id, admission.ClassHuman); err != nil {
				cause := admission.CauseOf(err)
				failed++
				d.countShed(cause)
				span.SetAttr("result", "shed")
				span.SetAttr("cause", cause)
				if d.Audit != nil {
					ctx := map[string]string{"target": id, "cause": cause}
					if sc := span.Context(); sc.Valid() {
						ctx["trace"] = sc.Trace.String()
					}
					d.Audit.Append(audit.KindAdmission, source,
						fmt.Sprintf("dispatch to %s shed (%s)", id, cause), ctx)
				}
				span.Finish()
				continue
			}
		}
		tev := ev
		if sc := span.Context(); sc.Valid() {
			tev.Labels = telemetry.Inject(sc, cloneLabels(ev.Labels))
		}
		msg := network.Message{From: source, To: id, Topic: "command", Payload: tev}
		err := d.Deadline.Run(func() error { return d.Sender.Send(msg) })
		if err != nil {
			failed++
			d.count("dispatch.failed")
			span.SetAttr("result", "failed")
			span.SetAttr("error", err.Error())
			span.Finish()
			continue
		}
		sent++
		d.count("dispatch.sent")
		span.SetAttr("result", "sent")
		span.Finish()
	}
	root.Finish()
	if d.Collective != nil {
		// Snapshot epochs and compile latency move when commands land
		// on devices whose sets were just mutated; publish them with
		// the dispatch outcome so operators see both planes together.
		d.Collective.RecordPolicyMetrics(d.Metrics)
	}
	return sent, failed
}

func (d *Dispatcher) count(name string) {
	if d.Metrics != nil {
		d.Metrics.Inc(name, 1)
	}
}

func (d *Dispatcher) countShed(cause string) {
	if reg := d.Metrics.Registry(); reg != nil {
		reg.Counter("dispatch.shed", "cause", cause).Inc()
	}
}
