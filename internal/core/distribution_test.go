package core

import (
	"errors"
	"math/rand"
	"strconv"
	"testing"

	"repro/internal/audit"
	"repro/internal/bundle"
	"repro/internal/network"
	"repro/internal/policy"
	"repro/internal/policylang"
	"repro/internal/telemetry"
)

func distKey() bundle.HMACKey {
	return bundle.HMACKey{ID: "dist-key", Secret: []byte("distribution secret")}
}

func distPolicies(t *testing.T, n int, tag string) []policy.Policy {
	t.Helper()
	var src string
	for i := 0; i < n; i++ {
		src += "policy dp" + string(rune('a'+i)) + " priority " + strconv.Itoa(i+1) +
			":\n    on task\n    when intensity > 0\n    do work target " + tag + " category surveillance\n"
	}
	pols, err := policylang.CompileSource(src, policy.OriginHuman)
	if err != nil {
		t.Fatalf("CompileSource: %v", err)
	}
	return pols
}

// distFixture wires a collective of two members on a synchronous bus
// with a distributor, both devices enrolled.
func distFixture(t *testing.T, mutate ...func(*DistributorConfig)) (*Collective, *Distributor, *network.Bus) {
	t.Helper()
	bus := network.NewBus(rand.New(rand.NewSource(1)))
	c := newCollective(t, func(cfg *Config) { cfg.Bus = bus })
	for _, id := range []string{"d1", "d2"} {
		if err := c.AddDevice(newMember(t, c, id, 10), nil); err != nil {
			t.Fatalf("AddDevice %s: %v", id, err)
		}
	}
	cfg := DistributorConfig{Collective: c, Signer: distKey()}
	for _, m := range mutate {
		m(&cfg)
	}
	dist, err := NewDistributor(cfg)
	if err != nil {
		t.Fatalf("NewDistributor: %v", err)
	}
	for _, id := range []string{"d1", "d2"} {
		if err := dist.Enroll(id, distKey()); err != nil {
			t.Fatalf("Enroll %s: %v", id, err)
		}
	}
	return c, dist, bus
}

func TestDistributorPublishConverges(t *testing.T) {
	c, dist, _ := distFixture(t)
	rev, err := dist.Publish(distPolicies(t, 3, "r1"))
	if err != nil {
		t.Fatalf("Publish: %v", err)
	}
	if rev != 1 {
		t.Fatalf("revision %d, want 1", rev)
	}
	if !dist.Converged() {
		t.Fatalf("not converged after synchronous publish; lagging %v", dist.Lagging())
	}
	for _, id := range []string{"d1", "d2"} {
		d, _ := c.Device(id)
		if d.Policies().Len() != 3 {
			t.Fatalf("%s has %d policies, want 3", id, d.Policies().Len())
		}
		if got := d.Policies().Revision(); got != 1 {
			t.Fatalf("%s at revision %d, want 1", id, got)
		}
	}
	// Activations were audited on the shared log.
	if got := len(c.Audit().ByKind(audit.KindBundle)); got < 3 { // publish + 2 activations
		t.Fatalf("shared log has %d bundle entries, want >= 3", got)
	}

	// The activation ledger chains one status entry per ack, and
	// VerifyFrom picks up incremental verification from a checkpoint:
	// verify the prefix once, then verify only the suffix appended by
	// the next revision.
	ledger := dist.Ledger()
	if ledger.Len() != 2 {
		t.Fatalf("ledger has %d entries, want 2", ledger.Len())
	}
	if err := ledger.Verify(); err != nil {
		t.Fatalf("ledger verify: %v", err)
	}
	mark := ledger.Len()
	tip := ledger.Entries()[mark-1].Hash

	if _, err := dist.Publish(distPolicies(t, 3, "r2")); err != nil {
		t.Fatalf("Publish r2: %v", err)
	}
	if ledger.Len() != 4 {
		t.Fatalf("ledger has %d entries after r2, want 4", ledger.Len())
	}
	if err := ledger.VerifyFrom(mark, tip); err != nil {
		t.Fatalf("incremental ledger verify from %d: %v", mark, err)
	}
}

func TestDistributorFailClosedPush(t *testing.T) {
	c, dist, bus := distFixture(t)
	if _, err := dist.Publish(distPolicies(t, 3, "r1")); err != nil {
		t.Fatalf("Publish: %v", err)
	}

	// A tampered re-signed push (rogue key) reaches d1 through the
	// normal transport and must be refused with the device unmoved.
	bad, err := dist.roots[0].pub.Full()
	if err != nil {
		t.Fatal(err)
	}
	bad.Manifest.Revision = 99
	bad.Manifest.Root = bundle.ComputeRoot(bad.Manifest)
	bad.SignWith(bundle.HMACKey{ID: "rogue", Secret: []byte("rogue")})
	data, _ := bundle.Encode(bad)
	if err := bus.Send(network.Message{From: "attacker", To: "d1", Topic: TopicBundle, Payload: data}); err != nil {
		t.Fatalf("send: %v", err)
	}

	d, _ := c.Device("d1")
	if got := d.Policies().Revision(); got != 1 {
		t.Fatalf("d1 moved to revision %d after tampered push", got)
	}
	var rejected []audit.Entry
	for _, e := range c.Audit().ByKind(audit.KindBundle) {
		if e.Detail == "bundle.rejected" {
			rejected = append(rejected, e)
		}
	}
	if len(rejected) != 1 || rejected[0].Context["cause"] != "signature" {
		t.Fatalf("rejection audit = %+v, want one signature rejection", rejected)
	}
	// The rejection was reported back and ledgered too.
	var ledgered bool
	for _, e := range dist.Ledger().Entries() {
		if e.Actor == "d1" && e.Context["applied"] == "false" && e.Context["cause"] == "signature" {
			ledgered = true
		}
	}
	if !ledgered {
		t.Fatal("rejection status report missing from activation ledger")
	}
}

func TestDistributorRepairAfterOneWayPartition(t *testing.T) {
	stuckReports := 0
	_, dist, bus := distFixture(t, func(cfg *DistributorConfig) {
		cfg.StuckThreshold = 2
		cfg.OnStuck = func(string) { stuckReports++ }
	})
	if _, err := dist.Publish(distPolicies(t, 3, "r1")); err != nil {
		t.Fatalf("Publish r1: %v", err)
	}

	// Asymmetric failure: d2 can hear the distributor but not answer.
	// The push succeeds, the ack dies — the distributor must keep
	// repairing, and d2 keeps re-acking into the void without ever
	// re-activating (stale re-pushes are no-ops).
	bus.PartitionOneWay([]string{"d2"}, []string{dist.id})
	if _, err := dist.Publish(distPolicies(t, 3, "r2")); err != nil {
		t.Fatalf("Publish r2: %v", err)
	}
	d2, _ := dist.col.Device("d2")
	if got := d2.Policies().Revision(); got != 2 {
		t.Fatalf("d2 at revision %d, want 2 (push direction is open)", got)
	}
	if got := dist.AckedRevision("d2"); got != 1 {
		t.Fatalf("distributor believes d2 acked %d, want 1 (ack direction is blocked)", got)
	}
	if lag := dist.Lagging(); len(lag) != 1 || lag[0] != "d2" {
		t.Fatalf("lagging = %v, want [d2]", lag)
	}

	// Repair past the stuck threshold escalates exactly once.
	for i := 0; i < 4; i++ {
		dist.RepairSweep()
	}
	if stuckReports != 1 {
		t.Fatalf("OnStuck fired %d times, want 1", stuckReports)
	}
	if st := dist.Stuck(); len(st) != 1 || st[0] != "d2" {
		t.Fatalf("stuck = %v, want [d2]", st)
	}

	// Healing the asymmetry lets the next repair's re-ack through; the
	// device never re-activated (revision still 2), and the stall clears.
	bus.HealOneWay()
	dist.RepairSweep()
	if !dist.Converged() {
		t.Fatalf("not converged after heal; lagging %v", dist.Lagging())
	}
	if got := d2.Policies().Revision(); got != 2 {
		t.Fatalf("d2 re-activated to %d, want to stay at 2", got)
	}
	if len(dist.Stuck()) != 0 {
		t.Fatalf("stuck flag not cleared: %v", dist.Stuck())
	}
}

func TestDistributorGapTriggersPullRepair(t *testing.T) {
	c, dist, bus := distFixture(t)
	for _, tag := range []string{"r1", "r2", "r3"} {
		if _, err := dist.Publish(distPolicies(t, 3, tag)); err != nil {
			t.Fatalf("Publish %s: %v", tag, err)
		}
	}
	// Simulate a misdirected delta: d1 is at revision 3; wind it back by
	// enrolling a fresh member and sending it a delta cut against
	// revision 2 — an unbridgeable gap for a device at revision 0.
	if err := c.AddDevice(newMember(t, c, "d3", 10), nil); err != nil {
		t.Fatal(err)
	}
	if err := dist.Enroll("d3", distKey()); err != nil {
		t.Fatal(err)
	}
	delta, ok := dist.roots[0].pub.DeltaFrom(2)
	if !ok {
		t.Fatal("DeltaFrom(2) failed")
	}
	data, _ := bundle.Encode(delta)
	if err := bus.Send(network.Message{From: dist.id, To: "d3", Topic: TopicBundle, Payload: data}); err != nil {
		t.Fatalf("send: %v", err)
	}
	// The gap rejection triggered a pull, the pull triggered a full
	// repair push, and d3 converged — all synchronously on this bus.
	d3, _ := c.Device("d3")
	if got := d3.Policies().Revision(); got != 3 {
		t.Fatalf("d3 at revision %d after pull repair, want 3", got)
	}
	if got := dist.AckedRevision("d3"); got != 3 {
		t.Fatalf("distributor has d3 acked at %d, want 3", got)
	}
}

// A forged ack — payload claiming another device's identity — must not
// advance the claimed device's recorded revision: before the fix, a
// compromised device could mask a lagging peer from RepairSweep
// forever by acking on its behalf.
func TestDistributorForgedAckDoesNotMaskLaggingDevice(t *testing.T) {
	reg := telemetry.NewRegistry()
	c, dist, bus := distFixture(t, func(cfg *DistributorConfig) { cfg.Telemetry = reg })
	if _, err := dist.Publish(distPolicies(t, 3, "r1")); err != nil {
		t.Fatalf("Publish: %v", err)
	}
	// d2 goes fully dark and misses revision 2.
	bus.Partition(map[string]int{"d2": 1})
	if _, err := dist.Publish(distPolicies(t, 3, "r2")); err != nil {
		t.Fatalf("Publish r2: %v", err)
	}
	if lag := dist.Lagging(); len(lag) != 1 || lag[0] != "d2" {
		t.Fatalf("lagging = %v, want [d2]", lag)
	}

	// d1 (compromised) forges an ack in d2's name claiming revision 2.
	forged := BundleAck{Device: "d2", Revision: 2, Applied: true}
	if err := bus.Send(network.Message{From: "d1", To: dist.id, Topic: TopicBundleAck, Payload: forged}); err != nil {
		t.Fatalf("send forged ack: %v", err)
	}
	if got := dist.AckedRevision("d2"); got != 1 {
		t.Fatalf("forged ack advanced d2 to %d, want 1", got)
	}
	if lag := dist.Lagging(); len(lag) != 1 || lag[0] != "d2" {
		t.Fatalf("forged ack masked d2 from repair; lagging = %v, want [d2]", lag)
	}
	if got := reg.Counter("bundle.forged_report", "topic", TopicBundleAck).Value(); got != 1 {
		t.Fatalf("forged_report{bundle_ack} = %d, want 1", got)
	}
	var audited bool
	for _, e := range c.Audit().ByKind(audit.KindBundle) {
		if e.Detail == "bundle.forged_report" && e.Context["claimed"] == "d2" && e.Context["from"] == "d1" {
			audited = true
		}
	}
	if !audited {
		t.Fatal("forged ack not audited")
	}

	// And the heal-side proof: d2 is still repairable.
	bus.Heal()
	dist.RepairSweep()
	if !dist.Converged() {
		t.Fatalf("not converged after heal; lagging %v", dist.Lagging())
	}
}

// A forged pull — payload claiming another device — is dropped and
// counted instead of triggering repair traffic on the victim's behalf.
func TestDistributorForgedPullDropped(t *testing.T) {
	reg := telemetry.NewRegistry()
	_, dist, bus := distFixture(t, func(cfg *DistributorConfig) { cfg.Telemetry = reg })
	if _, err := dist.Publish(distPolicies(t, 3, "r1")); err != nil {
		t.Fatalf("Publish: %v", err)
	}
	pushedBefore := reg.Counter("bundle.pushed").Value()
	if err := bus.Send(network.Message{From: "d1", To: dist.id, Topic: TopicBundlePull, Payload: BundlePull{Device: "d2", Have: 0}}); err != nil {
		t.Fatalf("send forged pull: %v", err)
	}
	if got := reg.Counter("bundle.forged_report", "topic", TopicBundlePull).Value(); got != 1 {
		t.Fatalf("forged_report{bundle_pull} = %d, want 1", got)
	}
	if got := reg.Counter("bundle.pushed").Value(); got != pushedBefore {
		t.Fatalf("forged pull triggered a push (%d -> %d)", pushedBefore, got)
	}
}

// A bundle-plane message with a payload of the wrong type is counted
// and audited, not silently dropped — on both the device side (push
// payload) and the distributor side (ack/pull payload).
func TestDistributorBadPayloadCounted(t *testing.T) {
	reg := telemetry.NewRegistry()
	c, dist, bus := distFixture(t, func(cfg *DistributorConfig) { cfg.Telemetry = reg })
	if _, err := dist.Publish(distPolicies(t, 3, "r1")); err != nil {
		t.Fatalf("Publish: %v", err)
	}
	if err := bus.Send(network.Message{From: dist.id, To: "d1", Topic: TopicBundle, Payload: 42}); err != nil {
		t.Fatalf("send: %v", err)
	}
	if err := bus.Send(network.Message{From: "d1", To: dist.id, Topic: TopicBundleAck, Payload: "not an ack"}); err != nil {
		t.Fatalf("send: %v", err)
	}
	if err := bus.Send(network.Message{From: "d1", To: dist.id, Topic: TopicBundlePull, Payload: 7}); err != nil {
		t.Fatalf("send: %v", err)
	}
	if got := reg.Counter("bundle.bad_payload").Value(); got != 3 {
		t.Fatalf("bad_payload = %d, want 3", got)
	}
	var audited int
	for _, e := range c.Audit().ByKind(audit.KindBundle) {
		if e.Detail == "bundle.bad_payload" {
			audited++
		}
	}
	if audited != 3 {
		t.Fatalf("bad_payload audited %d times, want 3", audited)
	}
}

// An encode failure during fan-out is counted and audited — the seam
// stands in for a marshal failure that cannot realistically happen
// with the current wire types.
func TestDistributorEncodeFailureCounted(t *testing.T) {
	reg := telemetry.NewRegistry()
	c, dist, _ := distFixture(t, func(cfg *DistributorConfig) { cfg.Telemetry = reg })
	orig := encodeBundle
	encodeBundle = func(bundle.Bundle) ([]byte, error) { return nil, errStubEncode }
	defer func() { encodeBundle = orig }()

	if _, err := dist.Publish(distPolicies(t, 3, "r1")); err != nil {
		t.Fatalf("Publish: %v", err)
	}
	if got := reg.Counter("bundle.encode_failed", "root", "default").Value(); got != 2 {
		t.Fatalf("encode_failed = %d, want 2 (one per device)", got)
	}
	if got := reg.Counter("bundle.pushed").Value(); got != 0 {
		t.Fatalf("pushed = %d after failed encodes, want 0", got)
	}
	var audited int
	for _, e := range c.Audit().ByKind(audit.KindBundle) {
		if e.Detail == "bundle.encode_failed" {
			audited++
		}
	}
	if audited != 2 {
		t.Fatalf("encode_failed audited %d times, want 2", audited)
	}
}

var errStubEncode = errors.New("stub encode failure")

// multiRootFixture wires two org roots ("us", "uk") over four devices,
// two subscribed to each root, with per-device keyrings scoping each
// org's key to its own prefix.
func multiRootFixture(t *testing.T) (*Collective, *Distributor, *telemetry.Registry) {
	t.Helper()
	bus := network.NewBus(rand.New(rand.NewSource(7)))
	c := newCollective(t, func(cfg *Config) { cfg.Bus = bus })
	for _, id := range []string{"us-0", "us-1", "uk-0", "uk-1"} {
		if err := c.AddDevice(newMember(t, c, id, 10), nil); err != nil {
			t.Fatalf("AddDevice %s: %v", id, err)
		}
	}
	usKey := bundle.HMACKey{ID: "us-root", Secret: []byte("us secret")}
	ukKey := bundle.HMACKey{ID: "uk-root", Secret: []byte("uk secret")}
	reg := telemetry.NewRegistry()
	dist, err := NewDistributor(DistributorConfig{
		Collective: c,
		Telemetry:  reg,
		Roots: []RootConfig{
			{Org: "us", Signer: usKey},
			{Org: "uk", Signer: ukKey},
		},
	})
	if err != nil {
		t.Fatalf("NewDistributor: %v", err)
	}
	ring := bundle.NewKeyRing().
		Add(usKey.ID, usKey, bundle.Scope{Org: "us"}).
		Add(ukKey.ID, ukKey, bundle.Scope{Org: "uk"})
	for _, id := range []string{"us-0", "us-1"} {
		if err := dist.EnrollRoots(id, ring, "us"); err != nil {
			t.Fatalf("EnrollRoots %s: %v", id, err)
		}
	}
	for _, id := range []string{"uk-0", "uk-1"} {
		if err := dist.EnrollRoots(id, ring, "uk"); err != nil {
			t.Fatalf("EnrollRoots %s: %v", id, err)
		}
	}
	return c, dist, reg
}

func orgPolicies(t *testing.T, org, tag string, n int) []policy.Policy {
	t.Helper()
	var src string
	for i := 0; i < n; i++ {
		src += "policy " + org + ".p" + string(rune('a'+i)) + " priority " + strconv.Itoa(i+1) +
			":\n    on task\n    when intensity > 0\n    do work target " + tag + " category surveillance\n"
	}
	pols, err := policylang.CompileSource(src, policy.OriginHuman)
	if err != nil {
		t.Fatalf("CompileSource: %v", err)
	}
	return pols
}

// Two org roots publish independently: each root's subscribers
// converge on their own revision stream, the other root's devices are
// untouched, and each root keeps its own ledger segment.
func TestDistributorMultiRootIndependentStreams(t *testing.T) {
	c, dist, _ := multiRootFixture(t)
	if _, err := dist.PublishRoot("us", orgPolicies(t, "us", "r1", 2)); err != nil {
		t.Fatalf("PublishRoot us: %v", err)
	}
	if _, err := dist.PublishRoot("uk", orgPolicies(t, "uk", "r1", 3)); err != nil {
		t.Fatalf("PublishRoot uk: %v", err)
	}
	if _, err := dist.PublishRoot("uk", orgPolicies(t, "uk", "r2", 3)); err != nil {
		t.Fatalf("PublishRoot uk r2: %v", err)
	}
	if got := dist.RootRevision("us"); got != 1 {
		t.Fatalf("us revision %d, want 1", got)
	}
	if got := dist.RootRevision("uk"); got != 2 {
		t.Fatalf("uk revision %d, want 2", got)
	}
	if !dist.Converged() {
		t.Fatalf("not converged; lagging %v", dist.Lagging())
	}
	for id, want := range map[string]uint64{"us-0": 1, "us-1": 1, "uk-0": 2, "uk-1": 2} {
		d, _ := c.Device(id)
		if got := d.Policies().Revision(); got != want {
			t.Fatalf("%s at revision %d, want %d", id, got, want)
		}
	}
	us, _ := c.Device("us-0")
	if got := us.Policies().OrgRevision("uk"); got != 0 {
		t.Fatalf("us-0 has uk stream at %d, want 0", got)
	}
	if got := us.Policies().Len(); got != 2 {
		t.Fatalf("us-0 holds %d policies, want 2", got)
	}
	// Ledger segments are per root: each holds only its own
	// subscribers' acks.
	if got := dist.RootLedger("us").Len(); got != 2 {
		t.Fatalf("us ledger has %d entries, want 2", got)
	}
	if got := dist.RootLedger("uk").Len(); got != 4 {
		t.Fatalf("uk ledger has %d entries, want 4", got)
	}
}

// A bundle published on one root never crosses to the other root's
// subscribers, and a cross-org push signed by the right key but
// claiming the wrong stream is refused with cause scope.
func TestDistributorMultiRootScopeRefusal(t *testing.T) {
	c, dist, reg := multiRootFixture(t)
	if _, err := dist.PublishRoot("us", orgPolicies(t, "us", "r1", 2)); err != nil {
		t.Fatalf("PublishRoot us: %v", err)
	}
	// The us root's bundle, replayed at a uk device: the uk device is
	// not subscribed to the us stream, so the push dies as a scope
	// refusal before verification.
	full, err := dist.roots[0].pub.Full()
	if err != nil {
		t.Fatal(err)
	}
	data, _ := bundle.Encode(full)
	if err := c.bus.Send(network.Message{From: dist.id, To: "uk-0", Topic: TopicBundle, Payload: data}); err != nil {
		t.Fatalf("send: %v", err)
	}
	uk, _ := c.Device("uk-0")
	if got := uk.Policies().Len(); got != 0 {
		t.Fatalf("uk-0 holds %d policies after cross-root push, want 0", got)
	}
	if got := reg.Counter("bundle.rejected", "cause", "scope").Value(); got != 1 {
		t.Fatalf("rejected{scope} = %d, want 1", got)
	}
	if got := reg.Counter("bundle.scope_rejected", "root", "us").Value(); got != 1 {
		t.Fatalf("scope_rejected{us} = %d, want 1", got)
	}
}
