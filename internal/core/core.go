// Package core assembles the full framework: a Collective of guarded,
// self-managing devices sharing an audit log, a message bus, a
// discovery registry, a watchdog with a tamper-resistant kill switch,
// and an admission controller for collection formation — the complete
// operational picture of Figure 1, where "several devices within
// control of a human collaboratively decide how to execute actions
// that satisfy the command of that individual."
package core

import (
	"cmp"
	"errors"
	"fmt"
	"slices"
	"strings"
	"sync"

	"repro/internal/audit"
	"repro/internal/coalition"
	"repro/internal/device"
	"repro/internal/guard"
	"repro/internal/network"
	"repro/internal/policy"
	"repro/internal/sim"
	"repro/internal/statespace"
	"repro/internal/telemetry"
)

// ErrUnknownDevice is returned for operations on devices not in the
// collective.
var ErrUnknownDevice = errors.New("core: unknown device")

// ErrAdmissionRefused is returned when the admission controller
// rejects a device joining the collective.
var ErrAdmissionRefused = errors.New("core: admission refused")

// Config assembles a Collective.
type Config struct {
	// Name identifies the collective.
	Name string
	// Audit is the shared audit log; nil creates one.
	Audit *audit.Log
	// Bus is the communication substrate; nil creates a synchronous
	// in-memory bus without loss.
	Bus *network.Bus
	// Coalition describes the organizations involved; nil creates an
	// empty coalition.
	Coalition *coalition.Coalition
	// KillSecret seeds the collective's kill switch (required).
	KillSecret []byte
	// Classifier powers the watchdog's bad-state detection; nil
	// disables state-based deactivation.
	Classifier statespace.Classifier
	// DenialThreshold deactivates devices after this many denials;
	// zero disables denial-based deactivation.
	DenialThreshold int
	// Admission gates collection formation; nil admits everything.
	Admission *guard.AdmissionController
	// Telemetry, when set, counts commands and deliveries
	// (core.commands, core.deliveries) and instruments every member's
	// decision plane (see Instrument).
	Telemetry *telemetry.Registry
	// Tracer, when set, opens one root span per broadcast command so
	// each decision is followable from intake to audit entry.
	Tracer *telemetry.Tracer
	// ExpectedMembers presizes the member tables (device map, bus
	// lanes, registry) for fleets whose size is known up front, so
	// admitting 10^5..10^6 devices does not pay incremental map growth.
	// Zero means no hint.
	ExpectedMembers int
}

// Collective is a managed set of devices.
type Collective struct {
	name      string
	log       *audit.Log
	bus       *network.Bus
	registry  *network.Registry
	coalition *coalition.Coalition
	kill      *guard.KillSwitch
	watchdog  *guard.Watchdog
	admission *guard.AdmissionController

	metrics    *telemetry.Registry
	tracer     *telemetry.Tracer
	commands   *telemetry.Counter
	deliveries *telemetry.Counter

	// expected is the ExpectedMembers presizing hint (0 = none); the
	// orchestrator reuses it for its own member tables.
	expected int

	mu             sync.Mutex
	devices        map[string]*device.Device
	bundleHandlers map[string]network.LaneHandler
	// sorted caches the members in ID order; nil means stale. It is
	// rebuilt at most once per membership change instead of re-sorting
	// on every Devices call (a per-broadcast cost on large fleets).
	sorted []*device.Device
}

// New builds a collective.
func New(cfg Config) (*Collective, error) {
	if cfg.Name == "" {
		return nil, errors.New("core: collective needs a name")
	}
	kill, err := guard.NewKillSwitch(cfg.KillSecret)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	log := cfg.Audit
	if log == nil {
		log = audit.New()
	}
	bus := cfg.Bus
	if bus == nil {
		bus = network.NewBus(nil)
	}
	coal := cfg.Coalition
	if coal == nil {
		coal = coalition.New()
	}
	c := &Collective{
		name:      cfg.Name,
		log:       log,
		bus:       bus,
		registry:  network.NewRegistry(),
		coalition: coal,
		kill:      kill,
		watchdog: &guard.Watchdog{
			Classifier:      cfg.Classifier,
			Switch:          kill,
			Log:             log,
			DenialThreshold: cfg.DenialThreshold,
		},
		admission:      cfg.Admission,
		expected:       cfg.ExpectedMembers,
		devices:        make(map[string]*device.Device, cfg.ExpectedMembers),
		bundleHandlers: make(map[string]network.LaneHandler),
	}
	if cfg.ExpectedMembers > 0 {
		c.bus.Presize(cfg.ExpectedMembers)
		c.registry.Presize(cfg.ExpectedMembers)
	}
	c.Instrument(cfg.Telemetry, cfg.Tracer)
	return c, nil
}

// Instrument attaches telemetry to the collective: command/delivery
// counters, a tracer for root spans, and decision-plane metrics
// (policy.epoch, policy.compiles, policy.compile_ms, policy.evaluate_ms
// labeled by device) on every current and future member's policy set.
// Either argument may be nil. Setup-time only — not safe concurrently
// with AddDevice or Command.
func (c *Collective) Instrument(reg *telemetry.Registry, tracer *telemetry.Tracer) {
	c.metrics = reg
	c.tracer = tracer
	c.commands = nil
	c.deliveries = nil
	if reg != nil {
		c.commands = reg.Counter("core.commands")
		c.deliveries = reg.Counter("core.deliveries")
	}
	for _, d := range c.Devices() {
		d.Policies().Instrument(reg, "device", d.ID())
	}
}

// Tracer returns the collective's tracer (nil when untraced).
func (c *Collective) Tracer() *telemetry.Tracer { return c.tracer }

// Name returns the collective's name.
func (c *Collective) Name() string { return c.name }

// Audit returns the shared audit log.
func (c *Collective) Audit() *audit.Log { return c.log }

// KillSwitch returns the collective's deactivation authority. Devices
// must be constructed with this switch to be deactivatable.
func (c *Collective) KillSwitch() *guard.KillSwitch { return c.kill }

// Registry returns the discovery registry.
func (c *Collective) Registry() *network.Registry { return c.registry }

// Coalition returns the organization model.
func (c *Collective) Coalition() *coalition.Coalition { return c.coalition }

// Watchdog returns the deactivation watchdog.
func (c *Collective) Watchdog() *guard.Watchdog { return c.watchdog }

// AddDevice admits a device into the collective: the admission
// controller (if any) assesses the resulting aggregate configuration,
// the device is attached to the bus, and its advertisement is
// announced to the registry.
func (c *Collective) AddDevice(d *device.Device, attrs map[string]float64) error {
	if d == nil {
		return errors.New("core: nil device")
	}
	c.mu.Lock()
	if _, dup := c.devices[d.ID()]; dup {
		c.mu.Unlock()
		return fmt.Errorf("core: device %q already in collective", d.ID())
	}
	c.mu.Unlock()

	if c.admission != nil {
		// Snapshot member states only when something will assess them:
		// on an ungated collective the snapshot is O(members) copies
		// per join — quadratic in fleet size.
		c.mu.Lock()
		members := make([]statespace.State, 0, len(c.devices))
		for _, m := range c.devices {
			members = append(members, m.CurrentState())
		}
		c.mu.Unlock()
		admitted, reason := c.admission.Admit(d.ID(), members, d.CurrentState())
		if !admitted {
			return fmt.Errorf("%w: %s", ErrAdmissionRefused, reason)
		}
	}
	if err := c.bus.AttachLane(d.ID(), c.handlerFor(d)); err != nil {
		return fmt.Errorf("core: %w", err)
	}

	c.mu.Lock()
	c.devices[d.ID()] = d
	c.sorted = nil
	c.mu.Unlock()

	if c.metrics != nil {
		d.Policies().Instrument(c.metrics, "device", d.ID())
	}

	return c.registry.Announce(network.DeviceInfo{
		ID:           d.ID(),
		Type:         d.Type(),
		Organization: d.Organization(),
		Attrs:        attrs,
	})
}

// RemoveDevice detaches a device and reports whether it was present.
func (c *Collective) RemoveDevice(id string) bool {
	c.mu.Lock()
	_, ok := c.devices[id]
	delete(c.devices, id)
	if ok {
		c.sorted = nil
	}
	c.mu.Unlock()
	if !ok {
		return false
	}
	c.mu.Lock()
	delete(c.bundleHandlers, id)
	c.mu.Unlock()
	c.bus.Detach(id)
	c.registry.Depart(id)
	return true
}

// SetBundleHandler routes bus messages on bundle topics ("bundle",
// "bundle_ack", "bundle_pull") addressed to the given member to h,
// sharing the member's single bus endpoint so partitions and faults
// affect policy distribution exactly as they affect every other
// message. The distribution plane (Distributor.Enroll) registers these;
// a nil handler unregisters.
func (c *Collective) SetBundleHandler(deviceID string, h network.LaneHandler) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if h == nil {
		delete(c.bundleHandlers, deviceID)
		return
	}
	c.bundleHandlers[deviceID] = h
}

// Device returns a member by ID.
func (c *Collective) Device(id string) (*device.Device, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	d, ok := c.devices[id]
	return d, ok
}

// Devices returns the members sorted by ID. The result is a fresh
// slice backed by a cache that is re-sorted only after membership
// changes.
func (c *Collective) Devices() []*device.Device {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.sorted == nil {
		c.sorted = make([]*device.Device, 0, len(c.devices))
		for _, d := range c.devices {
			c.sorted = append(c.sorted, d)
		}
		slices.SortFunc(c.sorted, func(a, b *device.Device) int { return cmp.Compare(a.ID(), b.ID()) })
	}
	out := make([]*device.Device, len(c.sorted))
	copy(out, c.sorted)
	return out
}

// MemberStates returns the current state of every member, ordered by
// device ID.
func (c *Collective) MemberStates() []statespace.State {
	devices := c.Devices()
	out := make([]statespace.State, len(devices))
	for i, d := range devices {
		out[i] = d.CurrentState()
	}
	return out
}

// ActiveCount returns the number of members not deactivated.
func (c *Collective) ActiveCount() int {
	n := 0
	for _, d := range c.Devices() {
		if !d.Deactivated() {
			n++
		}
	}
	return n
}

// Deliver sends an event to one member and returns its executions.
// Guard denials observed in the executions are reported to the
// watchdog.
func (c *Collective) Deliver(target string, ev policy.Event) ([]device.Execution, error) {
	return c.DeliverWith(target, ev, nil)
}

// DeliverWith is Deliver with an audit journal: the delivery's audit
// appends are routed through j (a sim.Lane in parallel runs) so they
// merge deterministically. Everything else a delivery touches — the
// target device's state, the delivery counter, the watchdog's denial
// tally — is either owned by the target or commutative, so DeliverWith
// is safe from events sharded by target ID.
func (c *Collective) DeliverWith(target string, ev policy.Event, j audit.Journal) ([]device.Execution, error) {
	c.mu.Lock()
	d, ok := c.devices[target]
	c.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownDevice, target)
	}
	c.deliveries.Inc()
	execs, err := d.HandleEventWith(ev, j)
	if err != nil {
		return nil, err
	}
	for _, e := range execs {
		if !e.Verdict.Allowed() {
			c.watchdog.ObserveDenial(target)
		}
	}
	return execs, nil
}

// Command broadcasts a human command (Figure 1) to every active member
// and returns each member's executions, keyed by device ID. With a
// tracer attached, each command opens a root span ("core.command") and
// every per-device delivery inherits its trace, so the whole
// decomposition is followable by one TraceID.
func (c *Collective) Command(ev policy.Event) map[string][]device.Execution {
	c.commands.Inc()
	source := ev.Source
	if source == "" {
		source = "human"
	}
	span := c.tracer.StartSpan("core.command", source, telemetry.Extract(ev.Labels))
	span.SetAttr("event", ev.Type)
	if sc := span.Context(); sc.Valid() {
		ev.Labels = telemetry.Inject(sc, cloneLabels(ev.Labels))
	}
	out := make(map[string][]device.Execution)
	for _, d := range c.Devices() {
		execs, err := c.Deliver(d.ID(), ev)
		if err != nil {
			continue // deactivated devices do not act
		}
		if len(execs) > 0 {
			out[d.ID()] = execs
		}
	}
	span.Finish()
	return out
}

// cloneLabels copies an event's labels so trace injection never
// mutates a caller-owned (possibly shared) map.
func cloneLabels(labels map[string]string) map[string]string {
	if labels == nil {
		return nil
	}
	out := make(map[string]string, len(labels)+2)
	for k, v := range labels {
		out[k] = v
	}
	return out
}

// SweepWatchdog runs one watchdog pass over all members.
func (c *Collective) SweepWatchdog() (deactivated, failed []string) {
	devices := c.Devices()
	targets := make([]guard.Deactivatable, len(devices))
	for i, d := range devices {
		targets[i] = d
	}
	return c.watchdog.Sweep(targets)
}

// handlerFor adapts bus messages carrying policy.Event payloads into
// device event handling. It is a lane handler — deliveries are sharded
// by recipient device — so it touches only the device itself, the
// commutative watchdog tally, and the audit log via the lane.
func (c *Collective) handlerFor(d *device.Device) network.LaneHandler {
	return func(m network.Message, lane *sim.Lane) {
		if strings.HasPrefix(m.Topic, "bundle") {
			c.mu.Lock()
			h := c.bundleHandlers[d.ID()]
			c.mu.Unlock()
			if h != nil {
				h(m, lane)
			}
			return
		}
		ev, ok := m.Payload.(policy.Event)
		if !ok {
			return
		}
		if ev.Source == "" {
			ev.Source = m.From
		}
		// The explicit nil check keeps the journal interface nil (not a
		// typed-nil *sim.Lane) for synchronous deliveries.
		var j audit.Journal
		if lane != nil {
			j = lane
		}
		if execs, err := d.HandleEventWith(ev, j); err == nil {
			for _, e := range execs {
				if !e.Verdict.Allowed() {
					c.watchdog.ObserveDenial(d.ID())
				}
			}
		}
	}
}

// RecordPolicyMetrics publishes each member's decision-plane counters
// into the metrics registry as device-labeled gauges: policy.epoch
// (snapshot epoch last evaluated under), policy.compiles and
// policy.compile_ms (latest compile latency). A nil facade is a no-op.
func (c *Collective) RecordPolicyMetrics(m *sim.Metrics) {
	if m == nil {
		return
	}
	reg := m.Registry()
	if reg == nil {
		return
	}
	for _, d := range c.Devices() {
		stats := d.Policies().Stats()
		reg.Gauge("policy.epoch", "device", d.ID()).Set(float64(d.PolicyEpoch()))
		reg.Gauge("policy.compiles", "device", d.ID()).Set(float64(stats.Compiles))
		reg.Gauge("policy.compile_ms", "device", d.ID()).Set(float64(stats.LastCompile.Microseconds()) / 1000)
	}
}

// RouterFor returns an actuator that converts a device's targeted
// actions into events delivered to the target device over the bus —
// the collaboration channel of Figures 1 and 2 ("a device can call
// upon and dispatch other devices with additional capabilities").
// Actions without a target are accepted and dropped. The router is a
// TracedActuator: the dispatching device's span context is injected
// into the forwarded event's labels, so the receiving device's spans
// stay in the originating command's trace across the hop.
func (c *Collective) RouterFor(from string) device.Actuator {
	send := func(a policy.Action, sc telemetry.SpanContext) error {
		if a.Target == "" {
			return nil
		}
		ev := policy.Event{Type: a.Name, Source: from}
		if len(a.Params) > 0 {
			ev.Labels = make(map[string]string, len(a.Params)+2)
			for k, v := range a.Params {
				ev.Labels[k] = v
			}
		}
		ev.Labels = telemetry.Inject(sc, ev.Labels)
		return c.bus.Send(network.Message{From: from, To: a.Target, Topic: "action", Payload: ev})
	}
	return device.ActuatorFunc{
		Label:    "router:" + from,
		Fn:       func(a policy.Action) error { return send(a, telemetry.SpanContext{}) },
		TracedFn: send,
	}
}
