package core

import (
	"math/rand"
	"testing"

	"repro/internal/coalition"
	"repro/internal/network"
	"repro/internal/policy"
)

func exchangeFixture(t *testing.T) *PolicyExchange {
	t.Helper()
	c := coalition.New()
	for _, org := range []string{"us", "uk", "observer"} {
		if err := c.AddOrganization(org); err != nil {
			t.Fatalf("AddOrganization: %v", err)
		}
	}
	// uk trusts us fully; us trusts uk fully; nobody trusts observer
	// beyond intel, and observer trusts us at medium.
	mustSetTrust(t, c, "uk", "us", coalition.TrustFull)
	mustSetTrust(t, c, "us", "uk", coalition.TrustFull)
	mustSetTrust(t, c, "us", "observer", coalition.TrustLow)
	mustSetTrust(t, c, "observer", "us", coalition.TrustMedium)

	gossip := network.NewGossip(rand.New(rand.NewSource(61)), 2)
	return NewPolicyExchange(c, gossip)
}

func mustSetTrust(t *testing.T, c *coalition.Coalition, from, to string, tr coalition.Trust) {
	t.Helper()
	if err := c.SetTrust(from, to, tr); err != nil {
		t.Fatalf("SetTrust: %v", err)
	}
}

func sharedPolicy(id, org string) policy.Policy {
	return policy.Policy{
		ID: id, Organization: org, Origin: policy.OriginGenerated,
		EventType: "smoke", Modality: policy.ModalityDo,
		Action: policy.Action{Name: "observe"},
	}
}

func TestExchangePropagatesAndFilters(t *testing.T) {
	x := exchangeFixture(t)
	x.Join("us-drone", "us")
	x.Join("uk-drone", "uk")
	x.Join("observer-drone", "observer")

	if err := x.Publish("us-drone", sharedPolicy("us-rule", "us"), 1); err != nil {
		t.Fatalf("Publish: %v", err)
	}
	if err := x.Publish("observer-drone", sharedPolicy("observer-rule", "observer"), 1); err != nil {
		t.Fatalf("Publish: %v", err)
	}
	if rounds := x.Sync(100); rounds >= 100 {
		t.Fatal("gossip did not converge")
	}

	// uk trusts us fully → accepts the us rule; nobody trusts the
	// observer for policies → its rule is filtered everywhere else.
	ukAccepted, err := x.Accepted("uk-drone")
	if err != nil {
		t.Fatalf("Accepted: %v", err)
	}
	if len(ukAccepted) != 1 || ukAccepted[0].ID != "us-rule" {
		t.Errorf("uk accepted = %v", ukAccepted)
	}
	// observer trusts us at medium → policy sharing allowed; plus its
	// own rule.
	obsAccepted, err := x.Accepted("observer-drone")
	if err != nil {
		t.Fatalf("Accepted: %v", err)
	}
	if len(obsAccepted) != 2 {
		t.Errorf("observer accepted = %v", obsAccepted)
	}
	// us trusts observer only at intel level → only its own rule.
	usAccepted, err := x.Accepted("us-drone")
	if err != nil {
		t.Fatalf("Accepted: %v", err)
	}
	if len(usAccepted) != 1 || usAccepted[0].ID != "us-rule" {
		t.Errorf("us accepted = %v", usAccepted)
	}
}

func TestExchangeInstall(t *testing.T) {
	x := exchangeFixture(t)
	x.Join("us-drone", "us")
	x.Join("uk-drone", "uk")
	if err := x.Publish("us-drone", sharedPolicy("us-rule", "us"), 1); err != nil {
		t.Fatalf("Publish: %v", err)
	}
	x.Sync(100)

	set := policy.NewSet()
	n, err := x.Install("uk-drone", set)
	if err != nil || n != 1 {
		t.Fatalf("Install = %d, %v", n, err)
	}
	if _, ok := set.Get("us-rule"); !ok {
		t.Error("policy not installed")
	}

	// A newer revision replaces the old one after re-sync.
	revised := sharedPolicy("us-rule", "us")
	revised.Priority = 7
	if err := x.Publish("us-drone", revised, 2); err != nil {
		t.Fatalf("Publish: %v", err)
	}
	x.Sync(100)
	if _, err := x.Install("uk-drone", set); err != nil {
		t.Fatalf("Install: %v", err)
	}
	got, _ := set.Get("us-rule")
	if got.Priority != 7 {
		t.Errorf("revision not installed: priority = %d", got.Priority)
	}
}

func TestExchangeErrors(t *testing.T) {
	x := exchangeFixture(t)
	x.Join("us-drone", "us")
	if err := x.Publish("ghost", sharedPolicy("p", "us"), 1); err == nil {
		t.Error("publish from unjoined device accepted")
	}
	if err := x.Publish("us-drone", policy.Policy{}, 1); err == nil {
		t.Error("invalid policy accepted")
	}
	orgless := sharedPolicy("p", "")
	if err := x.Publish("us-drone", orgless, 1); err == nil {
		t.Error("organization-less policy accepted")
	}
	if _, err := x.Accepted("ghost"); err == nil {
		t.Error("accepted from unjoined device")
	}
	if _, err := x.Install("ghost", policy.NewSet()); err == nil {
		t.Error("install to unjoined device")
	}
}
