package core

import (
	"testing"
	"time"

	"repro/internal/device"
	"repro/internal/policy"
	"repro/internal/sim"
	"repro/internal/statespace"
)

func TestOrchestratorValidation(t *testing.T) {
	c := newCollective(t)
	engine := sim.NewEngine(sim.NewClock(time.Time{}))
	if _, err := NewOrchestrator(nil, engine); err == nil {
		t.Error("nil collective accepted")
	}
	if _, err := NewOrchestrator(c, nil); err == nil {
		t.Error("nil engine accepted")
	}
	o, err := NewOrchestrator(c, engine)
	if err != nil {
		t.Fatalf("NewOrchestrator: %v", err)
	}
	if err := o.Manage("ghost", time.Second, heatClassifier(), nil); err == nil {
		t.Error("unknown device accepted")
	}
}

// TestOrchestratorAutonomicRepair drives a device whose heat sensor
// climbs into the bad region; its MAPE loop raises a repair alert and
// the repair policy cools it down — all on the virtual clock.
func TestOrchestratorAutonomicRepair(t *testing.T) {
	start := time.Date(2026, 7, 6, 0, 0, 0, 0, time.UTC)
	clock := sim.NewClock(start)
	engine := sim.NewEngine(clock)
	c := newCollective(t)

	d := newMember(t, c, "worker", 10)
	heat := 10.0
	if err := d.BindSensor("heat", device.SensorFunc{Label: "thermo", Fn: func() (float64, error) {
		heat += 12 // the environment keeps heating the device
		return heat, nil
	}}); err != nil {
		t.Fatalf("BindSensor: %v", err)
	}
	if err := d.Policies().Add(policy.Policy{
		ID: "cool", EventType: device.DefaultRepairEvent, Modality: policy.ModalityDo,
		Action: policy.Action{Name: "cool", Effect: statespace.Delta{"heat": -60}},
	}); err != nil {
		t.Fatalf("Add: %v", err)
	}
	if err := d.RegisterActuator("cool", device.ActuatorFunc{Label: "fan", Fn: func(policy.Action) error {
		heat -= 60 // the fan actually cools the physical device
		if heat < 0 {
			heat = 0
		}
		return nil
	}}); err != nil {
		t.Fatalf("RegisterActuator: %v", err)
	}
	if err := c.AddDevice(d, nil); err != nil {
		t.Fatalf("AddDevice: %v", err)
	}

	o, err := NewOrchestrator(c, engine)
	if err != nil {
		t.Fatalf("NewOrchestrator: %v", err)
	}
	if err := o.Manage("worker", time.Second, heatClassifier(), nil); err != nil {
		t.Fatalf("Manage: %v", err)
	}
	if err := o.Manage("worker", time.Second, heatClassifier(), nil); err == nil {
		t.Error("duplicate management accepted")
	}
	if err := o.Manage("worker2", 0, heatClassifier(), nil); err == nil {
		t.Error("zero period accepted")
	}
	o.SweepEvery(5*time.Second, nil)

	if err := o.Run(start.Add(30 * time.Second)); err != nil {
		t.Fatalf("Run: %v", err)
	}
	// The device self-repairs: it must still be active (never stuck in
	// the bad region long enough for the watchdog to kill it between
	// repairs is not guaranteed — but with a repair each tick and a
	// 5-tick sweep, it recovers first).
	if d.Deactivated() {
		t.Fatalf("self-repairing device was deactivated; heat=%g state=%v", heat, d.CurrentState())
	}
	// The trajectory must show repeated cooling actions.
	traj := d.Trajectory()
	if len(traj) < 3 {
		t.Errorf("trajectory too short: %d", len(traj))
	}
	if !clock.Now().After(start) {
		t.Error("virtual clock did not advance")
	}
}

// TestOrchestratorWatchdogKillsUnrepairable shows the other path: a
// device without a repair policy stays bad and the sweep removes it.
func TestOrchestratorWatchdogKillsUnrepairable(t *testing.T) {
	start := time.Date(2026, 7, 6, 0, 0, 0, 0, time.UTC)
	engine := sim.NewEngine(sim.NewClock(start))
	c := newCollective(t)

	d := newMember(t, c, "stuck", 10)
	if err := d.BindSensor("heat", device.SensorFunc{Label: "thermo", Fn: func() (float64, error) {
		return 95, nil
	}}); err != nil {
		t.Fatalf("BindSensor: %v", err)
	}
	if err := c.AddDevice(d, nil); err != nil {
		t.Fatalf("AddDevice: %v", err)
	}

	o, err := NewOrchestrator(c, engine)
	if err != nil {
		t.Fatalf("NewOrchestrator: %v", err)
	}
	if err := o.Manage("stuck", time.Second, heatClassifier(), nil); err != nil {
		t.Fatalf("Manage: %v", err)
	}
	o.SweepEvery(3*time.Second, nil)
	if err := o.Run(start.Add(10 * time.Second)); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !d.Deactivated() {
		t.Error("unrepairable bad-state device survived the sweeps")
	}
}
