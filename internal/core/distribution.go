package core

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/audit"
	"repro/internal/bundle"
	"repro/internal/intern"
	"repro/internal/network"
	"repro/internal/policy"
	"repro/internal/sim"
	"repro/internal/telemetry"
)

// Bundle-plane bus topics. TopicBundle carries pushes (guard class
// under admission — policy updates are control traffic); acks and pulls
// are background, surviving on the strength of anti-entropy repair
// rather than priority.
const (
	TopicBundle     = "bundle"
	TopicBundleAck  = "bundle_ack"
	TopicBundlePull = "bundle_pull"
)

// defaultFanoutBatch is how many devices one sharded fan-out event
// covers when DistributorConfig.FanoutBatch is unset.
const defaultFanoutBatch = 512

// encodeBundle is the wire encoder, a seam so tests can force the
// encode-failure path (json.Marshal of a Bundle cannot realistically
// fail).
var encodeBundle = bundle.Encode

// BundleAck is a device's activation status report: the org root the
// report concerns, the revision the device is on after handling a
// push, and — when the push was refused — the fail-closed cause. Both
// outcomes flow into the root's hash-chained activation ledger, so
// "which device ran which revision when, and what it refused" is
// tamper-evident history per trust boundary.
type BundleAck struct {
	Device   string
	Org      string
	Revision uint64
	Applied  bool
	Cause    string
}

// BundlePull asks the distributor for repair of one root from the
// device's current revision — sent when a device detects a delta-chain
// gap.
type BundlePull struct {
	Device string
	Org    string
	Have   uint64
}

// RootConfig is one org root of a multi-root distributor: an
// independent revision stream signed by that organization's key.
type RootConfig struct {
	// Org names the organization ("" = the single-root deployment).
	Org string
	// Signer signs every bundle the root publishes (required).
	Signer bundle.Signer
}

// DistributorConfig assembles a Distributor.
type DistributorConfig struct {
	// Collective is the managed fleet (required).
	Collective *Collective
	// Signer is the single-root shorthand: equivalent to Roots holding
	// exactly {Org: "", Signer: Signer}. Exactly one of Signer and
	// Roots must be set.
	Signer bundle.Signer
	// Roots declares the org roots of a coalition deployment, each with
	// its own signing key, revision stream and activation ledger.
	Roots []RootConfig
	// ID is the distributor's bus node name; defaults to
	// "bundle-distributor".
	ID string
	// Telemetry counts the bundle.* metrics; may be nil.
	Telemetry *telemetry.Registry
	// Clock stamps activation-ledger entries; defaults to time.Now.
	// Deterministic runs must pass the engine clock.
	Clock func() time.Time
	// Engine, when set, shards publish fan-out into batch events keyed
	// like bus deliveries, so a publish to a large fleet spreads over
	// the worker pool instead of looping synchronously. Nil keeps
	// fan-out synchronous (small fleets, engine-less tests).
	Engine *sim.Engine
	// FanoutBatch is how many devices one sharded fan-out event covers;
	// zero means 512.
	FanoutBatch int
	// StuckThreshold flags a device after this many consecutive repair
	// pushes without an acknowledged catch-up on a root; zero means 3.
	StuckThreshold int
	// OnStuck is invoked (once per stall per root) for a device that
	// exceeded StuckThreshold. Nil reports the device to the
	// collective's watchdog as a denial, feeding distribution stalls
	// into the same deactivation pressure as guard denials.
	OnStuck func(deviceID string)
}

// distRoot is one org root's control-plane state: publisher, ledger
// segment, per-root gauges and the per-revision wire cache.
type distRoot struct {
	org    string
	label  string // telemetry label ("" org renders as "default")
	pub    *bundle.Publisher
	ledger *audit.Log

	gRevision     *telemetry.Gauge
	gLagging      *telemetry.Gauge
	cScopeRej     *telemetry.Counter
	cEncodeFailed *telemetry.Counter

	// The wire cache memoizes encoded bundles per (revision, base):
	// a fan-out to N devices sharing a handful of acked bases encodes
	// each distinct bundle once instead of N times. Guarded by wmu so
	// concurrent sharded batches share entries; contents are a pure
	// function of publisher state, so sharing is deterministic.
	wmu  sync.Mutex
	wrev uint64
	wire map[uint64]wireEntry
}

type wireEntry struct {
	data []byte
	kind string
}

// errNothingPublished marks a push attempted before the root's first
// revision — benign, nothing to send.
var errNothingPublished = errors.New("core: nothing published yet")

// wireFor returns the encoded bundle a device at the given acked base
// should receive: a delta when the base is in history, a full bundle
// otherwise, cached per (revision, base).
func (r *distRoot) wireFor(base uint64) (wireEntry, error) {
	r.wmu.Lock()
	defer r.wmu.Unlock()
	rev := r.pub.Revision()
	if rev == 0 {
		return wireEntry{}, errNothingPublished
	}
	if r.wrev != rev {
		r.wrev = rev
		r.wire = make(map[uint64]wireEntry, 4)
	}
	if w, ok := r.wire[base]; ok {
		return w, nil
	}
	b, ok := r.pub.DeltaFrom(base)
	if !ok {
		full, err := r.pub.Full()
		if err != nil {
			return wireEntry{}, errNothingPublished
		}
		b = full
	}
	data, err := encodeBundle(b)
	if err != nil {
		return wireEntry{}, err
	}
	w := wireEntry{data: data, kind: b.Kind()}
	r.wire[base] = w
	return w, nil
}

// Distributor is the control-plane half of the policy-distribution
// plane: it publishes signed, monotonically versioned bundles — one
// independent revision stream per org root — pushes them to enrolled
// devices over the bus, tracks per-device, per-root acknowledged
// revisions in hash-chained activation ledgers, and repairs lagging
// devices by anti-entropy re-push (delta when the device's base is
// still in history, full otherwise). All state a push or repair reads
// is guarded by one mutex; Publish and RepairSweep must run from
// serial-barrier context (engine.Schedule callbacks or outside a run)
// so bus fault sampling stays deterministic — with an Engine
// configured, the per-device sends fan out as sharded batch events
// whose bus traffic is staged back through lanes, keeping journals
// byte-identical at any worker count.
type Distributor struct {
	col   *Collective
	id    string
	clock func() time.Time

	engine      *sim.Engine
	fanoutBatch int

	stuckThreshold int
	onStuck        func(string)

	roots  []*distRoot
	rootOf map[string]int

	reg         *telemetry.Registry
	cPushed     *telemetry.Counter
	cAcked      *telemetry.Counter
	cRepairs    *telemetry.Counter
	cPulls      *telemetry.Counter
	cBadPayload *telemetry.Counter
	cForgedAck  *telemetry.Counter
	cForgedPull *telemetry.Counter
	cBytesFull  *telemetry.Counter
	cBytesDelta *telemetry.Counter

	// The fleet index is dense: every device the distributor has seen
	// (enrolled, or merely heard an ack from) owns one stable slot in
	// fleet, found through its interned ID. order holds the enrolled
	// slots sorted by device ID — the canonical fan-out order of
	// Publish and RepairSweep — and sweep is the reusable repair
	// snapshot (serial-barrier callers only).
	mu     sync.Mutex
	names  *intern.Table
	slotOf map[intern.ID]int32
	fleet  []fleetEntry
	order  []int32
	sweep  []int32
}

// fleetEntry is one device's distribution-plane record; sub holds its
// per-root subscription state, indexed like Distributor.roots.
type fleetEntry struct {
	id       string
	enrolled bool
	sub      []rootSub
}

// rootSub is one device's standing on one org root.
type rootSub struct {
	subscribed bool
	acked      uint64
	repairs    int
	stuck      bool
}

// slotLocked returns the device's slot, creating one on first sight.
// Caller holds x.mu.
func (x *Distributor) slotLocked(deviceID string) int32 {
	key := x.names.Of(deviceID)
	slot, ok := x.slotOf[key]
	if !ok {
		slot = int32(len(x.fleet))
		x.fleet = append(x.fleet, fleetEntry{id: deviceID, sub: make([]rootSub, len(x.roots))})
		x.slotOf[key] = slot
	}
	return slot
}

// rootLabel renders an org for the root-labeled bundle metrics.
func rootLabel(org string) string {
	if org == "" {
		return "default"
	}
	return org
}

// NewDistributor builds the distributor and attaches it to the bus as
// its own node, so acknowledgements and pulls reach it subject to the
// same partitions, loss and admission as any other traffic.
func NewDistributor(cfg DistributorConfig) (*Distributor, error) {
	if cfg.Collective == nil {
		return nil, errors.New("core: distributor needs a collective")
	}
	roots := cfg.Roots
	if len(roots) == 0 {
		if cfg.Signer == nil {
			return nil, errors.New("core: distributor needs a signer or roots")
		}
		roots = []RootConfig{{Org: "", Signer: cfg.Signer}}
	} else if cfg.Signer != nil {
		return nil, errors.New("core: set either Signer or Roots, not both")
	}
	id := cfg.ID
	if id == "" {
		id = "bundle-distributor"
	}
	clock := cfg.Clock
	if clock == nil {
		clock = time.Now
	}
	threshold := cfg.StuckThreshold
	if threshold <= 0 {
		threshold = 3
	}
	batch := cfg.FanoutBatch
	if batch <= 0 {
		batch = defaultFanoutBatch
	}
	x := &Distributor{
		col:            cfg.Collective,
		id:             id,
		clock:          clock,
		engine:         cfg.Engine,
		fanoutBatch:    batch,
		stuckThreshold: threshold,
		onStuck:        cfg.OnStuck,
		rootOf:         make(map[string]int, len(roots)),
		reg:            cfg.Telemetry,
		cPushed:        cfg.Telemetry.Counter("bundle.pushed"),
		cAcked:         cfg.Telemetry.Counter("bundle.acked"),
		cRepairs:       cfg.Telemetry.Counter("bundle.repairs"),
		cPulls:         cfg.Telemetry.Counter("bundle.pulls"),
		cBadPayload:    cfg.Telemetry.Counter("bundle.bad_payload"),
		cForgedAck:     cfg.Telemetry.Counter("bundle.forged_report", "topic", TopicBundleAck),
		cForgedPull:    cfg.Telemetry.Counter("bundle.forged_report", "topic", TopicBundlePull),
		cBytesFull:     cfg.Telemetry.Counter("bundle.bytes_on_wire", "kind", bundle.KindFull),
		cBytesDelta:    cfg.Telemetry.Counter("bundle.bytes_on_wire", "kind", bundle.KindDelta),
		names:          intern.NewTable(),
		slotOf:         make(map[intern.ID]int32),
	}
	for _, rc := range roots {
		if rc.Signer == nil {
			return nil, fmt.Errorf("core: root %q needs a signer", rc.Org)
		}
		if _, dup := x.rootOf[rc.Org]; dup {
			return nil, fmt.Errorf("core: duplicate root org %q", rc.Org)
		}
		label := rootLabel(rc.Org)
		x.rootOf[rc.Org] = len(x.roots)
		x.roots = append(x.roots, &distRoot{
			org:           rc.Org,
			label:         label,
			pub:           bundle.NewOrgPublisher(rc.Signer, rc.Org),
			ledger:        audit.New(audit.WithClock(clock)),
			gRevision:     cfg.Telemetry.Gauge("bundle.revision", "root", label),
			gLagging:      cfg.Telemetry.Gauge("bundle.lagging", "root", label),
			cScopeRej:     cfg.Telemetry.Counter("bundle.scope_rejected", "root", label),
			cEncodeFailed: cfg.Telemetry.Counter("bundle.encode_failed", "root", label),
		})
	}
	if x.onStuck == nil {
		x.onStuck = func(deviceID string) {
			cfg.Collective.Watchdog().ObserveDenial(deviceID)
		}
	}
	if err := cfg.Collective.bus.AttachLane(id, x.handle); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	return x, nil
}

// rootIndex resolves an org to its root ("" and unknown orgs fall back
// to root 0, the legacy single-root stream).
func (x *Distributor) rootIndex(org string) int {
	if ri, ok := x.rootOf[org]; ok {
		return ri
	}
	return 0
}

// Orgs returns the root orgs in configuration order.
func (x *Distributor) Orgs() []string {
	out := make([]string, len(x.roots))
	for i, r := range x.roots {
		out[i] = r.org
	}
	return out
}

// Ledger returns root 0's activation ledger: one hash-chained entry
// per status report (ack or rejection) the root received.
func (x *Distributor) Ledger() *audit.Log { return x.roots[0].ledger }

// RootLedger returns one org root's activation ledger (nil for an
// unknown org).
func (x *Distributor) RootLedger(org string) *audit.Log {
	if ri, ok := x.rootOf[org]; ok {
		return x.roots[ri].ledger
	}
	return nil
}

// Revision returns root 0's latest published revision.
func (x *Distributor) Revision() uint64 { return x.roots[0].pub.Revision() }

// RootRevision returns one org root's latest published revision (0
// for an unknown org).
func (x *Distributor) RootRevision(org string) uint64 {
	if ri, ok := x.rootOf[org]; ok {
		return x.roots[ri].pub.Revision()
	}
	return 0
}

// AckedRevision returns a device's last acknowledged revision on
// root 0.
func (x *Distributor) AckedRevision(deviceID string) uint64 {
	return x.ackedOn(0, deviceID)
}

// AckedRevisionRoot returns a device's last acknowledged revision on
// one org root.
func (x *Distributor) AckedRevisionRoot(org, deviceID string) uint64 {
	ri, ok := x.rootOf[org]
	if !ok {
		return 0
	}
	return x.ackedOn(ri, deviceID)
}

func (x *Distributor) ackedOn(ri int, deviceID string) uint64 {
	x.mu.Lock()
	defer x.mu.Unlock()
	if slot, ok := x.slotOf[x.names.Lookup(deviceID)]; ok {
		return x.fleet[slot].sub[ri].acked
	}
	return 0
}

// Lagging returns the enrolled devices whose acknowledged revision
// trails the published one on any subscribed root, sorted.
func (x *Distributor) Lagging() []string {
	var out []string
	x.mu.Lock()
	defer x.mu.Unlock()
	for _, slot := range x.order {
		e := &x.fleet[slot]
		for ri, r := range x.roots {
			if e.sub[ri].subscribed && e.sub[ri].acked < r.pub.Revision() {
				out = append(out, e.id)
				break
			}
		}
	}
	return out
}

// LaggingRoot returns the devices lagging one org root, sorted.
func (x *Distributor) LaggingRoot(org string) []string {
	ri, ok := x.rootOf[org]
	if !ok {
		return nil
	}
	cur := x.roots[ri].pub.Revision()
	var out []string
	x.mu.Lock()
	defer x.mu.Unlock()
	for _, slot := range x.order {
		if e := &x.fleet[slot]; e.sub[ri].subscribed && e.sub[ri].acked < cur {
			out = append(out, e.id)
		}
	}
	return out
}

// Converged reports whether every enrolled device acknowledged the
// current revision of every root it subscribes to.
func (x *Distributor) Converged() bool { return len(x.Lagging()) == 0 }

// Stuck returns devices flagged as stuck on any root (repairs beyond
// the threshold), sorted.
func (x *Distributor) Stuck() []string {
	x.mu.Lock()
	defer x.mu.Unlock()
	var out []string
	for _, slot := range x.order {
		e := &x.fleet[slot]
		for ri := range x.roots {
			if e.sub[ri].stuck {
				out = append(out, e.id)
				break
			}
		}
	}
	return out
}

// Enroll registers a collective member into the distribution plane,
// subscribed to every root: one device-side bundle agent per root,
// each verifying against v and bound to the member's policy set, with
// the member's bundle topics routed to them. The agents fail closed —
// every refused bundle is audited to the shared log with its cause,
// reported back to the distributor, and leaves the device on its
// previous verified revision.
func (x *Distributor) Enroll(deviceID string, v bundle.Verifier) error {
	return x.EnrollRoots(deviceID, v, x.Orgs()...)
}

// EnrollRoots registers a collective member subscribed to the given
// org roots only — the coalition shape, where each org's devices
// follow their own root's revision stream. A bundle claiming an org
// the device is not subscribed to is refused with cause "scope".
func (x *Distributor) EnrollRoots(deviceID string, v bundle.Verifier, orgs ...string) error {
	d, ok := x.col.Device(deviceID)
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownDevice, deviceID)
	}
	if len(orgs) == 0 {
		return fmt.Errorf("core: device %q enrolled with no roots", deviceID)
	}
	agents := make(map[string]*bundle.Agent, len(orgs))
	var primary *bundle.Agent
	primaryOrg := ""
	ris := make([]int, 0, len(orgs))
	for _, org := range orgs {
		ri, known := x.rootOf[org]
		if !known {
			return fmt.Errorf("core: unknown root org %q", org)
		}
		if _, dup := agents[org]; dup {
			continue
		}
		var agent *bundle.Agent
		if org == "" {
			agent = bundle.NewAgent(d.Policies(), v)
		} else {
			agent = bundle.NewOrgAgent(d.Policies(), v, org)
		}
		agents[org] = agent
		if primary == nil {
			primary = agent
			primaryOrg = org
		}
		ris = append(ris, ri)
	}
	x.col.SetBundleHandler(deviceID, x.deviceHandler(deviceID, agents, primary, primaryOrg))
	x.mu.Lock()
	slot := x.slotLocked(deviceID)
	for _, ri := range ris {
		x.fleet[slot].sub[ri].subscribed = true
	}
	if !x.fleet[slot].enrolled {
		x.fleet[slot].enrolled = true
		at := sort.Search(len(x.order), func(i int) bool {
			return x.fleet[x.order[i]].id >= deviceID
		})
		x.order = append(x.order, 0)
		copy(x.order[at+1:], x.order[at:])
		x.order[at] = slot
	}
	x.mu.Unlock()
	return nil
}

// Publish cuts and signs root 0's next revision from the desired
// policy set and pushes it to every subscribed device — the
// single-root API. Must run from serial-barrier context.
func (x *Distributor) Publish(desired []policy.Policy) (uint64, error) {
	return x.PublishRoot(x.roots[0].org, desired)
}

// PublishRoot cuts and signs one org root's next revision and fans it
// out to that root's subscribers — a delta from each device's acked
// revision when that base is still in history, a full bundle
// otherwise. With an engine configured the fan-out runs as sharded
// batch events; either way it must be called from serial-barrier
// context.
func (x *Distributor) PublishRoot(org string, desired []policy.Policy) (uint64, error) {
	ri, ok := x.rootOf[org]
	if !ok {
		return 0, fmt.Errorf("core: unknown root org %q", org)
	}
	r := x.roots[ri]
	full, _, err := r.pub.Publish(desired)
	if err != nil {
		return 0, err
	}
	rev := full.Manifest.Revision
	x.reg.Counter("bundle.published", "kind", full.Kind()).Inc()
	r.gRevision.Set(float64(rev))
	x.col.Audit().Append(audit.KindBundle, x.id, "bundle.published",
		map[string]string{"root": r.label, "revision": fmt.Sprint(rev), "policies": fmt.Sprint(len(full.Manifest.Coverage))})
	x.fanoutRoot(ri)
	x.updateLagging(ri)
	return rev, nil
}

// fanoutRoot pushes the root's current revision to every subscriber.
// With no engine it loops synchronously (serial-barrier caller); with
// an engine it slices the canonical order into batches of FanoutBatch
// devices and schedules each as a sharded event keyed by its first
// device — batches encode from the shared wire cache and stage their
// bus sends through the lane, so the send order (and therefore every
// fault sample) is identical at any worker count.
func (x *Distributor) fanoutRoot(ri int) {
	x.mu.Lock()
	subs := make([]int32, 0, len(x.order))
	for _, slot := range x.order {
		if x.fleet[slot].sub[ri].subscribed {
			subs = append(subs, slot)
		}
	}
	x.mu.Unlock()

	if x.engine == nil {
		for _, slot := range subs {
			x.mu.Lock()
			id, base := x.fleet[slot].id, x.fleet[slot].sub[ri].acked
			x.mu.Unlock()
			x.pushTo(ri, id, base, nil)
		}
		return
	}
	for start := 0; start < len(subs); start += x.fanoutBatch {
		end := start + x.fanoutBatch
		if end > len(subs) {
			end = len(subs)
		}
		batch := subs[start:end]
		x.mu.Lock()
		shard := x.fleet[batch[0]].id
		x.mu.Unlock()
		x.engine.ScheduleShard(0, shard, func(lane *sim.Lane) {
			x.pushBatch(ri, batch, lane)
		})
	}
}

// pushBatch is one sharded fan-out event: it resolves each device's
// acked base under the fleet lock, pulls the encoded bundle from the
// wire cache (atomic counters only — commutative), and stages the
// actual bus sends through the lane so they run as deterministically
// ordered serial barriers.
func (x *Distributor) pushBatch(ri int, batch []int32, lane *sim.Lane) {
	type outbound struct {
		id   string
		data []byte
	}
	sends := make([]outbound, 0, len(batch))
	for _, slot := range batch {
		x.mu.Lock()
		id, base := x.fleet[slot].id, x.fleet[slot].sub[ri].acked
		x.mu.Unlock()
		w, err := x.roots[ri].wireFor(base)
		if err != nil {
			x.recordWireErr(ri, id, err, lane)
			continue
		}
		x.countPush(w)
		sends = append(sends, outbound{id: id, data: w.data})
	}
	if len(sends) == 0 {
		return
	}
	x.scheduleSend(lane, func() {
		for _, s := range sends {
			x.send(network.Message{From: x.id, To: s.id, Topic: TopicBundle, Payload: s.data})
		}
	})
}

// RepairSweep is the anti-entropy pass over every root: each
// subscribed device whose acknowledged revision trails the root's
// published one gets a repair push. Devices that keep needing repair
// beyond the stuck threshold are audited and escalated through OnStuck
// exactly once per stall per root. Must run from serial-barrier
// context. Returns the number of repair pushes.
func (x *Distributor) RepairSweep() int {
	repaired := 0
	for ri := range x.roots {
		repaired += x.repairRoot(ri)
	}
	return repaired
}

func (x *Distributor) repairRoot(ri int) int {
	r := x.roots[ri]
	cur := r.pub.Revision()
	if cur == 0 {
		return 0
	}
	repaired := 0
	for _, slot := range x.repairSweepOrder() {
		x.mu.Lock()
		e := &x.fleet[slot]
		sub := &e.sub[ri]
		if !sub.subscribed {
			x.mu.Unlock()
			continue
		}
		id := e.id
		base := sub.acked
		if base >= cur {
			sub.repairs = 0
			x.mu.Unlock()
			continue
		}
		sub.repairs++
		count := sub.repairs
		alreadyStuck := sub.stuck
		if count > x.stuckThreshold && !alreadyStuck {
			sub.stuck = true
		}
		x.mu.Unlock()

		if count > x.stuckThreshold && !alreadyStuck {
			x.col.Audit().Append(audit.KindBundle, x.id, "bundle.stuck",
				map[string]string{"device": id, "root": r.label, "repairs": fmt.Sprint(count)})
			x.onStuck(id)
		}
		x.cRepairs.Inc()
		x.pushTo(ri, id, base, nil)
		repaired++
	}
	x.updateLagging(ri)
	return repaired
}

// repairSweepOrder snapshots the canonical order into the reusable
// sweep buffer. RepairSweep runs from serial-barrier context, so one
// buffer suffices.
func (x *Distributor) repairSweepOrder() []int32 {
	x.mu.Lock()
	defer x.mu.Unlock()
	x.sweep = append(x.sweep[:0], x.order...)
	return x.sweep
}

// pushTo encodes and sends the best bundle for a device at the given
// base revision on one root. Serial-barrier context only when lane is
// nil (it samples bus fault state).
func (x *Distributor) pushTo(ri int, deviceID string, base uint64, lane *sim.Lane) {
	w, err := x.roots[ri].wireFor(base)
	if err != nil {
		x.recordWireErr(ri, deviceID, err, lane)
		return
	}
	x.countPush(w)
	x.scheduleSend(lane, func() {
		x.send(network.Message{From: x.id, To: deviceID, Topic: TopicBundle, Payload: w.data})
	})
}

// recordWireErr accounts a failed bundle materialization. A root with
// nothing published yet is benign (nothing to send); an encode failure
// is a real drop and is counted and audited — the PR 5 rule: a message
// may die, but never silently.
func (x *Distributor) recordWireErr(ri int, deviceID string, err error, lane *sim.Lane) {
	if errors.Is(err, errNothingPublished) {
		return
	}
	r := x.roots[ri]
	r.cEncodeFailed.Inc()
	audit.Resolve(lane, x.col.Audit()).Append(audit.KindBundle, x.id, "bundle.encode_failed",
		map[string]string{"device": deviceID, "root": r.label, "error": err.Error()})
}

// countPush accounts one outbound bundle push.
func (x *Distributor) countPush(w wireEntry) {
	if w.kind == bundle.KindDelta {
		x.cBytesDelta.Add(int64(len(w.data)))
	} else {
		x.cBytesFull.Add(int64(len(w.data)))
	}
	x.cPushed.Inc()
}

// send pushes one distribution-plane message. A failed send is
// survivable by design — lost pushes are re-pushed by repair sweeps,
// lost acks re-acked on the next stale re-delivery, lost pulls retried
// on the next gap — but never silent: each is counted by topic so a
// persistently failing link shows up in telemetry before the watchdog
// escalation does.
func (x *Distributor) send(m network.Message) {
	if err := x.col.bus.Send(m); err != nil {
		x.reg.Counter("bundle.send_failed", "topic", m.Topic).Inc()
	}
}

// handle is the distributor's lane handler: all acks and pulls shard on
// the distributor's bus ID, so ledger appends and revision bookkeeping
// are serialized and deterministic. Replies (pull repairs) are staged
// through the lane so their bus sends run as serial barriers.
//
// A report's device identity is taken from the bus envelope, never
// from the payload: a compromised device claiming another device's
// identity in an ack (masking that device from repair) or in a pull is
// dropped, counted and audited instead of believed.
func (x *Distributor) handle(m network.Message, lane *sim.Lane) {
	switch m.Topic {
	case TopicBundleAck:
		ack, ok := m.Payload.(BundleAck)
		if !ok {
			x.recordBadPayload(m, lane)
			return
		}
		if m.From != ack.Device {
			x.recordForged(m, ack.Device, x.cForgedAck, lane)
			return
		}
		ri := x.rootIndex(ack.Org)
		r := x.roots[ri]
		x.cAcked.Inc()
		ctx := map[string]string{
			"revision": fmt.Sprint(ack.Revision),
			"applied":  fmt.Sprint(ack.Applied),
		}
		if ack.Cause != "" {
			ctx["cause"] = ack.Cause
		}
		audit.Resolve(lane, r.ledger).Append(audit.KindBundle, ack.Device, "bundle.status", ctx)
		x.mu.Lock()
		sub := &x.fleet[x.slotLocked(ack.Device)].sub[ri]
		if ack.Revision > sub.acked {
			sub.acked = ack.Revision
		}
		if sub.acked >= r.pub.Revision() {
			sub.repairs = 0
			sub.stuck = false
		}
		x.mu.Unlock()
		x.updateLagging(ri)
	case TopicBundlePull:
		pull, ok := m.Payload.(BundlePull)
		if !ok {
			x.recordBadPayload(m, lane)
			return
		}
		if m.From != pull.Device {
			x.recordForged(m, pull.Device, x.cForgedPull, lane)
			return
		}
		ri := x.rootIndex(pull.Org)
		x.cPulls.Inc()
		x.scheduleSend(lane, func() { x.pushTo(ri, pull.Device, pull.Have, nil) })
	}
}

// recordForged accounts a status report whose payload claims a device
// other than the bus sender: dropped, counted, audited — never
// believed.
func (x *Distributor) recordForged(m network.Message, claimed string, c *telemetry.Counter, lane *sim.Lane) {
	c.Inc()
	audit.Resolve(lane, x.col.Audit()).Append(audit.KindBundle, x.id, "bundle.forged_report",
		map[string]string{"topic": m.Topic, "from": m.From, "claimed": claimed})
}

// recordBadPayload accounts a bundle-plane message whose payload is
// not the expected type.
func (x *Distributor) recordBadPayload(m network.Message, lane *sim.Lane) {
	x.cBadPayload.Inc()
	audit.Resolve(lane, x.col.Audit()).Append(audit.KindBundle, x.id, "bundle.bad_payload",
		map[string]string{"topic": m.Topic, "from": m.From})
}

// deviceHandler builds the device-side lane handler: route the bundle
// to the agent of its claimed org root, verify, activate atomically,
// audit the outcome, and report status back. Rejections leave the
// policy set untouched and are counted by cause; a bundle for a root
// the device does not subscribe to is a scope refusal — the device
// never even verifies streams outside its coalition membership.
func (x *Distributor) deviceHandler(deviceID string, agents map[string]*bundle.Agent, primary *bundle.Agent, primaryOrg string) network.LaneHandler {
	return func(m network.Message, lane *sim.Lane) {
		if m.Topic != TopicBundle {
			return
		}
		data, ok := m.Payload.([]byte)
		if !ok {
			x.recordBadPayload(m, lane)
			return
		}
		log := x.col.Audit()
		b, err := bundle.Decode(data)
		agent, org := primary, primaryOrg
		if err == nil {
			if a, subscribed := agents[b.Manifest.Org]; subscribed {
				agent, org = a, b.Manifest.Org
			} else {
				org = b.Manifest.Org
				err = fmt.Errorf("%w: device not subscribed to org %q", bundle.ErrScope, org)
			}
		}
		var applied bool
		if err == nil {
			applied, err = agent.Apply(b)
		}
		rev := agent.Revision()
		ack := BundleAck{Device: deviceID, Org: org, Revision: rev, Applied: applied}
		if err != nil {
			cause := bundle.CauseOf(err)
			ack.Cause = cause
			x.reg.Counter("bundle.rejected", "cause", cause).Inc()
			if cause == "scope" {
				x.roots[x.rootIndex(org)].cScopeRej.Inc()
			}
			audit.Resolve(lane, log).Append(audit.KindBundle, deviceID, "bundle.rejected",
				map[string]string{"cause": cause, "revision": fmt.Sprint(rev)})
			if errors.Is(err, bundle.ErrGap) {
				// The device knows it is behind a chain it cannot patch
				// from: pull repair instead of waiting for the sweep.
				x.scheduleSend(lane, func() {
					x.send(network.Message{
						From: deviceID, To: x.id, Topic: TopicBundlePull,
						Payload: BundlePull{Device: deviceID, Org: org, Have: rev},
					})
				})
			}
		} else if applied {
			x.reg.Counter("bundle.activated", "kind", b.Kind()).Inc()
			audit.Resolve(lane, log).Append(audit.KindBundle, deviceID, "bundle.activated",
				map[string]string{"revision": fmt.Sprint(rev), "kind": b.Kind()})
		}
		x.scheduleSend(lane, func() {
			x.send(network.Message{
				From: deviceID, To: x.id, Topic: TopicBundleAck, Payload: ack,
			})
		})
	}
}

// scheduleSend runs fn as a serial-barrier event (bus sends sample
// shared fault state); with no lane (synchronous bus) it runs inline.
func (x *Distributor) scheduleSend(lane *sim.Lane, fn func()) {
	if lane == nil {
		fn()
		return
	}
	lane.Schedule(0, fn)
}

// updateLagging refreshes one root's bundle.lagging gauge.
func (x *Distributor) updateLagging(ri int) {
	r := x.roots[ri]
	cur := r.pub.Revision()
	n := 0
	x.mu.Lock()
	for _, slot := range x.order {
		if e := &x.fleet[slot]; e.sub[ri].subscribed && e.sub[ri].acked < cur {
			n++
		}
	}
	x.mu.Unlock()
	r.gLagging.Set(float64(n))
}
