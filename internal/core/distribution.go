package core

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/audit"
	"repro/internal/bundle"
	"repro/internal/intern"
	"repro/internal/network"
	"repro/internal/policy"
	"repro/internal/sim"
	"repro/internal/telemetry"
)

// Bundle-plane bus topics. TopicBundle carries pushes (guard class
// under admission — policy updates are control traffic); acks and pulls
// are background, surviving on the strength of anti-entropy repair
// rather than priority.
const (
	TopicBundle     = "bundle"
	TopicBundleAck  = "bundle_ack"
	TopicBundlePull = "bundle_pull"
)

// BundleAck is a device's activation status report: the revision it is
// on after handling a push, and — when the push was refused — the
// fail-closed cause. Both outcomes flow into the distributor's
// hash-chained activation ledger, so "which device ran which revision
// when, and what it refused" is tamper-evident history.
type BundleAck struct {
	Device   string
	Revision uint64
	Applied  bool
	Cause    string
}

// BundlePull asks the distributor for repair from the device's current
// revision — sent when a device detects a delta-chain gap.
type BundlePull struct {
	Device string
	Have   uint64
}

// DistributorConfig assembles a Distributor.
type DistributorConfig struct {
	// Collective is the managed fleet (required).
	Collective *Collective
	// Signer signs every published bundle (required).
	Signer bundle.Signer
	// ID is the distributor's bus node name; defaults to
	// "bundle-distributor".
	ID string
	// Telemetry counts the bundle.* metrics; may be nil.
	Telemetry *telemetry.Registry
	// Clock stamps activation-ledger entries; defaults to time.Now.
	// Deterministic runs must pass the engine clock.
	Clock func() time.Time
	// StuckThreshold flags a device after this many consecutive repair
	// pushes without an acknowledged catch-up; zero means 3.
	StuckThreshold int
	// OnStuck is invoked (once per stall) for a device that exceeded
	// StuckThreshold. Nil reports the device to the collective's
	// watchdog as a denial, feeding distribution stalls into the same
	// deactivation pressure as guard denials.
	OnStuck func(deviceID string)
}

// Distributor is the control-plane half of the policy-distribution
// plane: it publishes signed, monotonically versioned bundles, pushes
// them to enrolled devices over the bus, tracks per-device acknowledged
// revisions in a hash-chained activation ledger, and repairs lagging
// devices by anti-entropy re-push (delta when the device's base is
// still in history, full otherwise). All state a push or repair reads
// is guarded by one mutex; Publish and RepairSweep must run from
// serial-barrier context (engine.Schedule callbacks or outside a run)
// so bus fault sampling stays deterministic.
type Distributor struct {
	col    *Collective
	pub    *bundle.Publisher
	id     string
	ledger *audit.Log
	clock  func() time.Time

	stuckThreshold int
	onStuck        func(string)

	reg       *telemetry.Registry
	cPushed   *telemetry.Counter
	cAcked    *telemetry.Counter
	cRepairs  *telemetry.Counter
	cPulls    *telemetry.Counter
	gRevision *telemetry.Gauge
	gLagging  *telemetry.Gauge

	// The fleet index is dense: every device the distributor has seen
	// (enrolled, or merely heard an ack from) owns one stable slot in
	// fleet, found through its interned ID. order holds the enrolled
	// slots sorted by device ID — the canonical fan-out order of
	// Publish and RepairSweep — and sweep is the reusable fan-out
	// snapshot (serial-barrier callers only).
	mu     sync.Mutex
	names  *intern.Table
	slotOf map[intern.ID]int32
	fleet  []fleetEntry
	order  []int32
	sweep  []int32
}

// fleetEntry is one device's distribution-plane record.
type fleetEntry struct {
	id       string
	enrolled bool
	acked    uint64
	repairs  int
	stuck    bool
}

// slotLocked returns the device's slot, creating one on first sight.
// Caller holds x.mu.
func (x *Distributor) slotLocked(deviceID string) int32 {
	key := x.names.Of(deviceID)
	slot, ok := x.slotOf[key]
	if !ok {
		slot = int32(len(x.fleet))
		x.fleet = append(x.fleet, fleetEntry{id: deviceID})
		x.slotOf[key] = slot
	}
	return slot
}

// NewDistributor builds the distributor and attaches it to the bus as
// its own node, so acknowledgements and pulls reach it subject to the
// same partitions, loss and admission as any other traffic.
func NewDistributor(cfg DistributorConfig) (*Distributor, error) {
	if cfg.Collective == nil {
		return nil, errors.New("core: distributor needs a collective")
	}
	if cfg.Signer == nil {
		return nil, errors.New("core: distributor needs a signer")
	}
	id := cfg.ID
	if id == "" {
		id = "bundle-distributor"
	}
	clock := cfg.Clock
	if clock == nil {
		clock = time.Now
	}
	threshold := cfg.StuckThreshold
	if threshold <= 0 {
		threshold = 3
	}
	x := &Distributor{
		col:            cfg.Collective,
		pub:            bundle.NewPublisher(cfg.Signer),
		id:             id,
		ledger:         audit.New(audit.WithClock(clock)),
		clock:          clock,
		stuckThreshold: threshold,
		onStuck:        cfg.OnStuck,
		reg:            cfg.Telemetry,
		cPushed:        cfg.Telemetry.Counter("bundle.pushed"),
		cAcked:         cfg.Telemetry.Counter("bundle.acked"),
		cRepairs:       cfg.Telemetry.Counter("bundle.repairs"),
		cPulls:         cfg.Telemetry.Counter("bundle.pulls"),
		gRevision:      cfg.Telemetry.Gauge("bundle.revision"),
		gLagging:       cfg.Telemetry.Gauge("bundle.lagging"),
		names:          intern.NewTable(),
		slotOf:         make(map[intern.ID]int32),
	}
	if x.onStuck == nil {
		x.onStuck = func(deviceID string) {
			cfg.Collective.Watchdog().ObserveDenial(deviceID)
		}
	}
	if err := cfg.Collective.bus.AttachLane(id, x.handle); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	return x, nil
}

// Ledger returns the activation ledger: one hash-chained entry per
// status report (ack or rejection) the distributor received.
func (x *Distributor) Ledger() *audit.Log { return x.ledger }

// Revision returns the latest published revision.
func (x *Distributor) Revision() uint64 { return x.pub.Revision() }

// AckedRevision returns a device's last acknowledged revision.
func (x *Distributor) AckedRevision(deviceID string) uint64 {
	x.mu.Lock()
	defer x.mu.Unlock()
	if slot, ok := x.slotOf[x.names.Lookup(deviceID)]; ok {
		return x.fleet[slot].acked
	}
	return 0
}

// Lagging returns the enrolled devices whose acknowledged revision
// trails the published one, sorted.
func (x *Distributor) Lagging() []string {
	cur := x.pub.Revision()
	x.mu.Lock()
	defer x.mu.Unlock()
	var out []string
	for _, slot := range x.order {
		if e := &x.fleet[slot]; e.acked < cur {
			out = append(out, e.id)
		}
	}
	return out
}

// Converged reports whether every enrolled device acknowledged the
// current revision.
func (x *Distributor) Converged() bool { return len(x.Lagging()) == 0 }

// Stuck returns devices flagged as stuck (repairs beyond the
// threshold), sorted.
func (x *Distributor) Stuck() []string {
	x.mu.Lock()
	defer x.mu.Unlock()
	var out []string
	for _, slot := range x.order {
		if e := &x.fleet[slot]; e.stuck {
			out = append(out, e.id)
		}
	}
	return out
}

// Enroll registers a collective member into the distribution plane: a
// device-side bundle agent verifying against v is bound to the member's
// policy set, and the member's bundle topics are routed to it. The
// agent fails closed — every refused bundle is audited to the shared
// log with its cause, reported back to the distributor, and leaves the
// device on its previous verified revision.
func (x *Distributor) Enroll(deviceID string, v bundle.Verifier) error {
	d, ok := x.col.Device(deviceID)
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownDevice, deviceID)
	}
	agent := bundle.NewAgent(d.Policies(), v)
	x.col.SetBundleHandler(deviceID, x.deviceHandler(deviceID, agent))
	x.mu.Lock()
	slot := x.slotLocked(deviceID)
	if !x.fleet[slot].enrolled {
		x.fleet[slot].enrolled = true
		at := sort.Search(len(x.order), func(i int) bool {
			return x.fleet[x.order[i]].id >= deviceID
		})
		x.order = append(x.order, 0)
		copy(x.order[at+1:], x.order[at:])
		x.order[at] = slot
	}
	x.mu.Unlock()
	return nil
}

// Publish cuts and signs the next revision from the desired policy set
// and pushes it to every enrolled device — a delta from each device's
// acknowledged revision when that base is still in history, a full
// bundle otherwise. Must run from serial-barrier context.
func (x *Distributor) Publish(desired []policy.Policy) (uint64, error) {
	full, _, err := x.pub.Publish(desired)
	if err != nil {
		return 0, err
	}
	rev := full.Manifest.Revision
	x.reg.Counter("bundle.published", "kind", full.Kind()).Inc()
	x.gRevision.Set(float64(rev))
	x.col.Audit().Append(audit.KindBundle, x.id, "bundle.published",
		map[string]string{"revision": fmt.Sprint(rev), "policies": fmt.Sprint(len(full.Manifest.Coverage))})
	for _, slot := range x.fanout() {
		x.mu.Lock()
		id, base := x.fleet[slot].id, x.fleet[slot].acked
		x.mu.Unlock()
		x.pushTo(id, base)
	}
	x.updateLagging()
	return rev, nil
}

// RepairSweep is the anti-entropy pass: every enrolled device whose
// acknowledged revision trails the published one gets a repair push.
// Devices that keep needing repair beyond the stuck threshold are
// audited and escalated through OnStuck exactly once per stall. Must
// run from serial-barrier context. Returns the number of repair pushes.
func (x *Distributor) RepairSweep() int {
	cur := x.pub.Revision()
	if cur == 0 {
		return 0
	}
	repaired := 0
	for _, slot := range x.fanout() {
		x.mu.Lock()
		e := &x.fleet[slot]
		id := e.id
		base := e.acked
		if base >= cur {
			e.repairs = 0
			x.mu.Unlock()
			continue
		}
		e.repairs++
		count := e.repairs
		alreadyStuck := e.stuck
		if count > x.stuckThreshold && !alreadyStuck {
			e.stuck = true
		}
		x.mu.Unlock()

		if count > x.stuckThreshold && !alreadyStuck {
			x.col.Audit().Append(audit.KindBundle, x.id, "bundle.stuck",
				map[string]string{"device": id, "repairs": fmt.Sprint(count)})
			x.onStuck(id)
		}
		x.cRepairs.Inc()
		x.pushTo(id, base)
		repaired++
	}
	x.updateLagging()
	return repaired
}

// fanout snapshots the canonical fan-out order into the reusable sweep
// buffer. Publish and RepairSweep run from serial-barrier context, so
// one buffer suffices.
func (x *Distributor) fanout() []int32 {
	x.mu.Lock()
	defer x.mu.Unlock()
	x.sweep = append(x.sweep[:0], x.order...)
	return x.sweep
}

// pushTo encodes and sends the best bundle for a device at the given
// base revision: a delta when the base is in history, a full otherwise.
// Serial-barrier context only (it samples bus fault state).
func (x *Distributor) pushTo(deviceID string, base uint64) {
	b, ok := x.pub.DeltaFrom(base)
	if !ok {
		full, err := x.pub.Full()
		if err != nil {
			return // nothing published yet
		}
		b = full
	}
	data, err := bundle.Encode(b)
	if err != nil {
		return
	}
	x.reg.Counter("bundle.bytes_on_wire", "kind", b.Kind()).Add(int64(len(data)))
	x.cPushed.Inc()
	x.send(network.Message{
		From: x.id, To: deviceID, Topic: TopicBundle, Payload: data,
	})
}

// send pushes one distribution-plane message. A failed send is
// survivable by design — lost pushes are re-pushed by repair sweeps,
// lost acks re-acked on the next stale re-delivery, lost pulls retried
// on the next gap — but never silent: each is counted by topic so a
// persistently failing link shows up in telemetry before the watchdog
// escalation does.
func (x *Distributor) send(m network.Message) {
	if err := x.col.bus.Send(m); err != nil {
		x.reg.Counter("bundle.send_failed", "topic", m.Topic).Inc()
	}
}

// handle is the distributor's lane handler: all acks and pulls shard on
// the distributor's bus ID, so ledger appends and revision bookkeeping
// are serialized and deterministic. Replies (pull repairs) are staged
// through the lane so their bus sends run as serial barriers.
func (x *Distributor) handle(m network.Message, lane *sim.Lane) {
	switch m.Topic {
	case TopicBundleAck:
		ack, ok := m.Payload.(BundleAck)
		if !ok {
			return
		}
		x.cAcked.Inc()
		ctx := map[string]string{
			"revision": fmt.Sprint(ack.Revision),
			"applied":  fmt.Sprint(ack.Applied),
		}
		if ack.Cause != "" {
			ctx["cause"] = ack.Cause
		}
		audit.Resolve(lane, x.ledger).Append(audit.KindBundle, ack.Device, "bundle.status", ctx)
		x.mu.Lock()
		e := &x.fleet[x.slotLocked(ack.Device)]
		if ack.Revision > e.acked {
			e.acked = ack.Revision
		}
		if e.acked >= x.pub.Revision() {
			e.repairs = 0
			e.stuck = false
		}
		x.mu.Unlock()
		x.updateLagging()
	case TopicBundlePull:
		pull, ok := m.Payload.(BundlePull)
		if !ok {
			return
		}
		x.cPulls.Inc()
		x.scheduleSend(lane, func() { x.pushTo(pull.Device, pull.Have) })
	}
}

// deviceHandler builds the device-side lane handler: verify, activate
// atomically, audit the outcome, and report status back. Rejections
// leave the policy set untouched and are counted by cause.
func (x *Distributor) deviceHandler(deviceID string, agent *bundle.Agent) network.LaneHandler {
	return func(m network.Message, lane *sim.Lane) {
		if m.Topic != TopicBundle {
			return
		}
		data, ok := m.Payload.([]byte)
		if !ok {
			return
		}
		log := x.col.Audit()
		b, err := bundle.Decode(data)
		var applied bool
		if err == nil {
			applied, err = agent.Apply(b)
		}
		rev := agent.Revision()
		ack := BundleAck{Device: deviceID, Revision: rev, Applied: applied}
		if err != nil {
			cause := bundle.CauseOf(err)
			ack.Cause = cause
			x.reg.Counter("bundle.rejected", "cause", cause).Inc()
			audit.Resolve(lane, log).Append(audit.KindBundle, deviceID, "bundle.rejected",
				map[string]string{"cause": cause, "revision": fmt.Sprint(rev)})
			if errors.Is(err, bundle.ErrGap) {
				// The device knows it is behind a chain it cannot patch
				// from: pull repair instead of waiting for the sweep.
				x.scheduleSend(lane, func() {
					x.send(network.Message{
						From: deviceID, To: x.id, Topic: TopicBundlePull,
						Payload: BundlePull{Device: deviceID, Have: rev},
					})
				})
			}
		} else if applied {
			x.reg.Counter("bundle.activated", "kind", b.Kind()).Inc()
			audit.Resolve(lane, log).Append(audit.KindBundle, deviceID, "bundle.activated",
				map[string]string{"revision": fmt.Sprint(rev), "kind": b.Kind()})
		}
		x.scheduleSend(lane, func() {
			x.send(network.Message{
				From: deviceID, To: x.id, Topic: TopicBundleAck, Payload: ack,
			})
		})
	}
}

// scheduleSend runs fn as a serial-barrier event (bus sends sample
// shared fault state); with no lane (synchronous bus) it runs inline.
func (x *Distributor) scheduleSend(lane *sim.Lane, fn func()) {
	if lane == nil {
		fn()
		return
	}
	lane.Schedule(0, fn)
}

// updateLagging refreshes the bundle.lagging gauge.
func (x *Distributor) updateLagging() {
	x.gLagging.Set(float64(len(x.Lagging())))
}
