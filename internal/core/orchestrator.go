package core

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/device"
	"repro/internal/sim"
	"repro/internal/statespace"
)

// Orchestrator drives a collective on the discrete-event engine: each
// device's autonomic (MAPE-K) loop ticks on its own period, the
// watchdog sweeps on another, and scripted events arrive at their
// scheduled times — the runtime shape of the paper's self-managing
// fleet ("the devices would need to be self-managing", Section II).
type Orchestrator struct {
	collective *Collective
	engine     *sim.Engine
	managers   map[string]*device.Manager
}

// NewOrchestrator builds an orchestrator over the collective and
// engine.
func NewOrchestrator(collective *Collective, engine *sim.Engine) (*Orchestrator, error) {
	if collective == nil || engine == nil {
		return nil, errors.New("core: orchestrator needs a collective and an engine")
	}
	return &Orchestrator{
		collective: collective,
		engine:     engine,
		managers:   make(map[string]*device.Manager),
	}, nil
}

// Manage schedules a device's autonomic loop every period. The
// classifier drives the Analyze phase; the optional metric enables
// decline detection.
func (o *Orchestrator) Manage(deviceID string, period time.Duration,
	classifier statespace.Classifier, metric statespace.SafenessMetric) error {
	d, ok := o.collective.Device(deviceID)
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownDevice, deviceID)
	}
	if _, dup := o.managers[deviceID]; dup {
		return fmt.Errorf("core: device %q already managed", deviceID)
	}
	if period <= 0 {
		return fmt.Errorf("core: management period must be positive, got %v", period)
	}
	m := &device.Manager{Device: d, Classifier: classifier, Metric: metric}
	o.managers[deviceID] = m
	o.engine.ScheduleEvery(period,
		func() bool { return !d.Deactivated() },
		func() {
			if _, err := m.Tick(o.engine.Clock().Now()); err != nil {
				// A deactivated device simply stops ticking; other
				// errors surface through the device's audit trail.
				return
			}
		})
	return nil
}

// SweepEvery schedules watchdog sweeps on the given period, until the
// predicate (nil = forever within the horizon) returns false.
func (o *Orchestrator) SweepEvery(period time.Duration, while func() bool) {
	o.engine.ScheduleEvery(period, while, func() {
		o.collective.SweepWatchdog()
	})
}

// Run processes scheduled work until the horizon.
func (o *Orchestrator) Run(horizon time.Time) error {
	return o.engine.Run(horizon)
}
