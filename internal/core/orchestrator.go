package core

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/admission"
	"repro/internal/audit"
	"repro/internal/device"
	"repro/internal/policy"
	"repro/internal/sim"
	"repro/internal/statespace"
)

// Orchestrator drives a collective on the discrete-event engine: each
// device's autonomic (MAPE-K) loop ticks on its own period, the
// watchdog sweeps on another, and scripted events arrive at their
// scheduled times — the runtime shape of the paper's self-managing
// fleet ("the devices would need to be self-managing", Section II).
type Orchestrator struct {
	collective *Collective
	engine     *sim.Engine

	// Metrics, when set, receives per-device decision-plane gauges on
	// every managed tick: the snapshot epoch the device last evaluated
	// under and the policy compile latency (policy.epoch,
	// policy.compiles, policy.compile_ms, labeled by device).
	Metrics *sim.Metrics

	// Admission, when set, gates each sharded command fan-out per
	// target before the delivery event is scheduled: a shed target is
	// counted (core.command_shed{cause}) and audited instead of being
	// dispatched past a saturated intake.
	Admission *admission.Controller
	// Audit, when set with Admission, records every shed fan-out as a
	// KindAdmission entry.
	Audit *audit.Log

	mu       sync.Mutex
	managers map[string]*device.Manager
}

// NewOrchestrator builds an orchestrator over the collective and
// engine.
func NewOrchestrator(collective *Collective, engine *sim.Engine) (*Orchestrator, error) {
	if collective == nil || engine == nil {
		return nil, errors.New("core: orchestrator needs a collective and an engine")
	}
	return &Orchestrator{
		collective: collective,
		engine:     engine,
		managers:   make(map[string]*device.Manager, collective.expected),
	}, nil
}

// Manage schedules a device's autonomic loop every period. The
// classifier drives the Analyze phase; the optional metric enables
// decline detection.
func (o *Orchestrator) Manage(deviceID string, period time.Duration,
	classifier statespace.Classifier, metric statespace.SafenessMetric) error {
	d, ok := o.collective.Device(deviceID)
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownDevice, deviceID)
	}
	o.mu.Lock()
	if _, dup := o.managers[deviceID]; dup {
		o.mu.Unlock()
		return fmt.Errorf("core: device %q already managed", deviceID)
	}
	if period <= 0 {
		o.mu.Unlock()
		return fmt.Errorf("core: management period must be positive, got %v", period)
	}
	m := &device.Manager{Device: d, Classifier: classifier, Metric: metric}
	o.managers[deviceID] = m
	o.mu.Unlock()
	// The tick is sharded by device ID: each device's MAPE loop owns
	// its own state, its gauges are device-labeled (shard-private), and
	// audit appends route through the lane — so a parallel engine runs
	// different devices' ticks concurrently without losing determinism.
	// (policy.compile_ms is wall-clock-derived and therefore varies
	// between runs regardless of parallelism.)
	o.engine.ScheduleEveryShard(period, deviceID,
		func() bool {
			// The loop dies when the device deactivates, crashes out of
			// the collective, or was replaced by a restarted instance;
			// freeing the manager slot lets the recovered instance be
			// managed under the same ID.
			current, present := o.collective.Device(deviceID)
			if !present || current != d || d.Deactivated() {
				o.unmanage(deviceID, m)
				return false
			}
			return true
		},
		func(lane *sim.Lane) {
			if _, err := m.TickWith(o.engine.Clock().Now(), lane); err != nil {
				// A deactivated device simply stops ticking; other
				// errors surface through the device's audit trail.
				return
			}
			if reg := o.Metrics.Registry(); reg != nil {
				stats := d.Policies().Stats()
				reg.Gauge("policy.epoch", "device", deviceID).Set(float64(d.PolicyEpoch()))
				reg.Gauge("policy.compiles", "device", deviceID).Set(float64(stats.Compiles))
				reg.Gauge("policy.compile_ms", "device", deviceID).Set(float64(stats.LastCompile.Microseconds()) / 1000)
			}
		})
	return nil
}

// unmanage frees the manager slot if it still belongs to m.
func (o *Orchestrator) unmanage(deviceID string, m *device.Manager) {
	o.mu.Lock()
	defer o.mu.Unlock()
	if o.managers[deviceID] == m {
		delete(o.managers, deviceID)
	}
}

// CommandEvery dispatches the event returned by next through the
// resilient dispatcher on the given period, until the predicate
// (nil = forever within the horizon) returns false — the command
// decomposition of Figure 1 running on the same engine as the
// autonomic loops, with retries, breakers and deadlines applied per
// delivery.
func (o *Orchestrator) CommandEvery(period time.Duration, while func() bool,
	d *Dispatcher, next func() policy.Event) {
	o.engine.ScheduleEvery(period, while, func() {
		d.Command(next())
	})
}

// CommandEverySharded broadcasts the event returned by next directly to
// every member on the given period, fanning the per-device deliveries
// out as same-time events sharded by target ID — so a parallel engine
// delivers to the whole fleet concurrently while each device's
// deliveries stay ordered and audit appends merge deterministically.
// The periodic tick itself is a barrier: next() runs serially, the
// member list is snapshotted there, and (when Admission is set) each
// target is admitted there — shed targets are counted
// (core.command_shed{cause}) and audited, never dropped silently.
// Unlike CommandEvery this path bypasses the resilient dispatcher; a
// member that left between snapshot and delivery is counted under
// core.delivery_skipped{cause}.
func (o *Orchestrator) CommandEverySharded(period time.Duration, while func() bool,
	next func() policy.Event) {
	o.engine.ScheduleEvery(period, while, func() {
		ev := next()
		for _, d := range o.collective.Devices() {
			id := d.ID()
			if o.Admission != nil {
				if err := o.Admission.Allow(id, admission.ClassHuman); err != nil {
					cause := admission.CauseOf(err)
					o.countCause("core.command_shed", cause)
					if o.Audit != nil {
						o.Audit.Append(audit.KindAdmission, "orchestrator",
							fmt.Sprintf("command fan-out to %s shed (%s)", id, cause),
							map[string]string{"target": id, "cause": cause})
					}
					continue
				}
			}
			o.engine.ScheduleShard(0, id, func(lane *sim.Lane) {
				if _, err := o.collective.DeliverWith(id, ev, lane); err != nil {
					// The member left or deactivated between snapshot and
					// delivery; the skip stays on the books.
					o.countCause("core.delivery_skipped", skipCause(err))
				}
			})
		}
	})
}

// skipCause maps a delivery error to the core.delivery_skipped cause
// label.
func skipCause(err error) string {
	switch {
	case errors.Is(err, ErrUnknownDevice):
		return "unknown_device"
	case errors.Is(err, device.ErrDeactivated):
		return "deactivated"
	default:
		return "error"
	}
}

// countCause increments a cause-labeled counter on the orchestrator's
// registry; a nil Metrics makes it a no-op.
func (o *Orchestrator) countCause(name, cause string) {
	if reg := o.Metrics.Registry(); reg != nil {
		reg.Counter(name, "cause", cause).Inc()
	}
}

// SweepEvery schedules watchdog sweeps on the given period, until the
// predicate (nil = forever within the horizon) returns false.
func (o *Orchestrator) SweepEvery(period time.Duration, while func() bool) {
	o.engine.ScheduleEvery(period, while, func() {
		o.collective.SweepWatchdog()
	})
}

// Run processes scheduled work until the horizon.
func (o *Orchestrator) Run(horizon time.Time) error {
	return o.engine.Run(horizon)
}
