package core

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/audit"
	"repro/internal/device"
	"repro/internal/guard"
	"repro/internal/network"
	"repro/internal/policy"
	"repro/internal/resilience"
	"repro/internal/sim"
	"repro/internal/telemetry"
)

// TestCommandTracedAcrossDevicesUnderChaos follows one dispatched
// command by TraceID across two devices over a lossy, duplicating bus:
// d1's policy forwards the task to d2 through the traced router, and
// despite drops, retries and duplicates the surviving spans must form
// one connected trace — a single root, no orphans — reaching both
// devices and the matching audit entries.
func TestCommandTracedAcrossDevicesUnderChaos(t *testing.T) {
	log := audit.New()
	metrics := sim.NewMetrics()
	reg := metrics.Registry()
	tracer := telemetry.NewTracer(telemetry.WithTracerMetrics(reg))
	bus := network.NewBus(rand.New(rand.NewSource(7)),
		network.WithLoss(0.3),
		network.WithDuplication(0.2),
		network.WithMetrics(metrics))

	c := newCollective(t, func(cfg *Config) {
		cfg.Audit = log
		cfg.Bus = bus
		cfg.Telemetry = reg
		cfg.Tracer = tracer
	})

	pipelineFor := func() guard.Guard {
		p := guard.NewPipeline(log, guard.AllowAll{})
		p.Instrument(reg, tracer)
		return p
	}

	member := func(id string) *device.Device {
		s := coreSchema(t)
		initial, err := s.StateFromMap(map[string]float64{"heat": 10, "fuel": 50})
		if err != nil {
			t.Fatalf("StateFromMap: %v", err)
		}
		d, err := device.New(device.Config{
			ID:         id,
			Type:       "drone",
			Initial:    initial,
			KillSwitch: c.KillSwitch(),
			Guard:      pipelineFor(),
			Audit:      log,
			Telemetry:  reg,
			Tracer:     tracer,
		})
		if err != nil {
			t.Fatalf("device.New(%s): %v", id, err)
		}
		return d
	}
	d1 := member("d1")
	d2 := member("d2")
	if err := d1.Policies().Add(policy.Policy{
		ID: "forward", EventType: "task", Modality: policy.ModalityDo,
		Action: policy.Action{Name: "assist", Target: "d2"},
	}); err != nil {
		t.Fatal(err)
	}
	if err := d2.Policies().Add(policy.Policy{
		ID: "work", EventType: "assist", Modality: policy.ModalityDo,
		Action: policy.Action{Name: "work"},
	}); err != nil {
		t.Fatal(err)
	}
	for _, d := range []*device.Device{d1, d2} {
		if err := c.AddDevice(d, nil); err != nil {
			t.Fatalf("AddDevice(%s): %v", d.ID(), err)
		}
	}
	if err := d1.RegisterActuator("assist", c.RouterFor("d1")); err != nil {
		t.Fatal(err)
	}

	dispatcher := &Dispatcher{
		Collective: c,
		Sender: &network.ReliableSender{
			Bus: bus,
			Retry: resilience.Retry{
				MaxAttempts: 6,
				Sleep:       func(time.Duration) {},
				Rand:        rand.New(rand.NewSource(8)).Float64,
			},
			Metrics: metrics,
		},
		Roster:  []string{"d1"},
		Metrics: metrics,
		Tracer:  tracer,
	}

	// Repeat the command until the whole chain (d1 forwards, d2
	// executes) lands despite the bus's loss knob; the direct router
	// hop d1→d2 is unretried, so a drop there needs a fresh command.
	executedByD2 := func() bool {
		for _, e := range log.ByKind(audit.KindAction) {
			if e.Actor == "d2" {
				return true
			}
		}
		return false
	}
	for i := 0; i < 100 && !executedByD2(); i++ {
		dispatcher.Command(policy.Event{Type: "task", Source: "human"})
	}
	if !executedByD2() {
		t.Fatal("command never reached d2 through the chaos bus")
	}

	// Find the trace that made it all the way to d2.
	var traceID telemetry.TraceID
	for _, s := range tracer.Spans() {
		if s.Actor == "d2" && s.Name == "device.handle" {
			traceID = s.Trace
		}
	}
	if traceID == 0 {
		t.Fatal("no device.handle span for d2")
	}
	spans := tracer.TraceSpans(traceID)
	if err := telemetry.CheckConnected(spans); err != nil {
		t.Fatalf("trace %s not connected: %v", traceID, err)
	}

	// The connected trace must span the dispatcher and both devices.
	actors := make(map[string]bool)
	names := make(map[string]bool)
	for _, s := range spans {
		actors[s.Actor] = true
		names[s.Name] = true
	}
	for _, want := range []string{"d1", "d2", "human"} {
		if !actors[want] {
			t.Errorf("trace missing actor %q (got %v)", want, actors)
		}
	}
	for _, want := range []string{"dispatch.command", "dispatch.deliver", "device.handle", "device.execute", "guard.check"} {
		if !names[want] {
			t.Errorf("trace missing span %q (got %v)", want, names)
		}
	}

	// The audit trail closes the loop: d2's action entry carries the
	// same trace ID the spans do.
	found := false
	for _, e := range log.ByKind(audit.KindAction) {
		if e.Actor == "d2" && e.Context["trace"] == traceID.String() {
			found = true
		}
	}
	if !found {
		t.Error("no d2 audit entry carries the trace ID")
	}

	// Chaos really fired: the accounting must show drops or duplicates.
	if metrics.Counter("bus.dropped")+metrics.Counter("bus.duplicated") == 0 {
		t.Error("chaos knobs produced no observable faults")
	}
}
