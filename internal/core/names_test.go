package core

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/audit"
	"repro/internal/bundle"
	"repro/internal/chaos"
	"repro/internal/device"
	"repro/internal/guard"
	"repro/internal/network"
	"repro/internal/policy"
	"repro/internal/policylang"
	"repro/internal/resilience"
	"repro/internal/sim"
	"repro/internal/telemetry"
)

// mustCompileOne compiles a single-policy policylang source.
func mustCompileOne(t *testing.T, src string) policy.Policy {
	t.Helper()
	pols, err := policylang.CompileSource(src, policy.OriginHuman)
	if err != nil || len(pols) != 1 {
		t.Fatalf("CompileSource: %v (%d policies)", err, len(pols))
	}
	return pols[0]
}

// TestMetricNamesUnified drives every instrumented subsystem against
// one registry and asserts each registered metric name follows the
// subsystem.name convention and appears in the telemetry taxonomy — a
// misspelled or unregistered name at any call site fails here instead
// of silently forking a new time series. The server.* and loadgen.*
// families register above core in the import graph; their real call
// sites get the same CheckNames audit in internal/server
// (TestServerMetricsAndNames) and cmd/loadgen (TestLoadgenMetricNames).
func TestMetricNamesUnified(t *testing.T) {
	log := audit.New()
	metrics := sim.NewMetrics()
	reg := metrics.Registry()
	tracer := telemetry.NewTracer(telemetry.WithTracerMetrics(reg))
	bus := network.NewBus(rand.New(rand.NewSource(1)),
		network.WithLoss(0.4), network.WithDuplication(0.2),
		network.WithMetrics(metrics))

	c := newCollective(t, func(cfg *Config) {
		cfg.Audit = log
		cfg.Bus = bus
		cfg.Telemetry = reg
		cfg.Tracer = tracer
	})
	s := coreSchema(t)
	initial, err := s.StateFromMap(map[string]float64{"heat": 10, "fuel": 50})
	if err != nil {
		t.Fatal(err)
	}
	pipe := guard.NewPipeline(log, guard.AllowAll{})
	pipe.Instrument(reg, tracer)
	d, err := device.New(device.Config{
		ID: "d1", Type: "drone", Initial: initial,
		KillSwitch: c.KillSwitch(), Guard: pipe, Audit: log,
		Telemetry: reg, Tracer: tracer,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Policies().Add(policy.Policy{
		ID: "work", EventType: "task", Modality: policy.ModalityDo,
		Action: policy.Action{Name: "work"},
	}); err != nil {
		t.Fatal(err)
	}
	if err := c.AddDevice(d, nil); err != nil {
		t.Fatal(err)
	}

	// Dispatch through the resilience stack so dispatch.*,
	// resilience.* and the guard/device/policy/trace families all
	// register; the direct Command path registers core.*.
	dispatcher := &Dispatcher{
		Collective: c,
		Sender: &network.ReliableSender{
			Bus: bus,
			Retry: resilience.Retry{
				MaxAttempts: 4,
				Sleep:       func(time.Duration) {},
				Rand:        rand.New(rand.NewSource(2)).Float64,
			},
			Breakers: &resilience.BreakerSet{Threshold: 2, Cooldown: time.Minute},
			Metrics:  metrics,
		},
		Metrics: metrics,
		Tracer:  tracer,
	}
	for i := 0; i < 20; i++ {
		dispatcher.Command(policy.Event{Type: "task", Source: "human"})
	}
	c.Command(policy.Event{Type: "task", Source: "human"})
	// A send to a detached node feeds the breaker until it opens, so
	// resilience.breaker_rejected registers too.
	for i := 0; i < 5; i++ {
		_ = dispatcher.Sender.Send(network.Message{From: "x", To: "ghost", Topic: "t"})
	}

	// Partition drops, so bus.dropped{cause="partition"} registers.
	bus.Partition(map[string]int{"d1": 1})
	_ = bus.Send(network.Message{From: "x", To: "d1", Topic: "t"})
	bus.Heal()

	// Gossip accounting, with and without a dropping link (plus retry).
	g := network.NewGossip(rand.New(rand.NewSource(3)), 1)
	g.SetMetrics(reg)
	g.Join("a").Put(network.Item{Key: "k", Version: 1})
	g.Join("b")
	g.SetRetry(resilience.Retry{MaxAttempts: 2, Sleep: func(time.Duration) {}})
	g.SetLink(func(from, to string) bool { return false })
	g.RunRound()
	g.SetLink(nil)
	g.RunRound()

	// Chaos fault accounting: every fault-local name the injector
	// emits must land under a registered chaos.* name.
	inj := &chaos.Injector{Metrics: metrics}
	for _, name := range []string{
		"loss.injected", "loss.healed",
		"partition.injected", "partition.healed",
		"oneway.injected", "oneway.healed",
		"duplication.injected", "duplication.healed",
		"slowlinks.injected", "slowlinks.healed",
		"skew.injected",
		"crash.injected", "crash.restarted", "crash.restart.failed",
	} {
		inj.Count(name)
	}

	// One-way partition drops register bus.dropped{cause="oneway"}.
	bus.PartitionOneWay([]string{"x"}, []string{"d1"})
	_ = bus.Send(network.Message{From: "x", To: "d1", Topic: "t"})
	bus.HealOneWay()

	// The bundle distribution plane: a publish/activate round trip, a
	// tampered push, a repair sweep against a lagging device, and a pull
	// exercise every bundle.* name at its real call site.
	key := bundle.HMACKey{ID: "names", Secret: []byte("names-secret")}
	dist, err := NewDistributor(DistributorConfig{
		Collective: c, Signer: key, Telemetry: reg, StuckThreshold: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := dist.Enroll("d1", key); err != nil {
		t.Fatal(err)
	}
	if _, err := dist.Publish([]policy.Policy{mustCompileOne(t,
		"policy pd priority 1:\n    on task\n    when intensity > 0\n    do work target d1 category surveillance\n")}); err != nil {
		t.Fatal(err)
	}
	// Tampered push → bundle.rejected registers.
	bad, _ := dist.roots[0].pub.Full()
	bad.Sig = "00"
	data, _ := bundle.Encode(bad)
	_ = bus.Send(network.Message{From: dist.id, To: "d1", Topic: TopicBundle, Payload: data})
	// A scope-violating push — valid signature, foreign org — registers
	// bundle.scope_rejected at its real call site.
	scoped := bad
	scoped.Manifest.Org = "foreign"
	scoped.Manifest.Root = bundle.ComputeRoot(scoped.Manifest)
	scoped.SignWith(key)
	data, _ = bundle.Encode(scoped)
	_ = bus.Send(network.Message{From: dist.id, To: "d1", Topic: TopicBundle, Payload: data})
	// Forged and malformed reports register bundle.forged_report and
	// bundle.bad_payload.
	_ = bus.Send(network.Message{From: "x", To: dist.id, Topic: TopicBundleAck,
		Payload: BundleAck{Device: "d1", Revision: 1, Applied: true}})
	_ = bus.Send(network.Message{From: "x", To: dist.id, Topic: TopicBundlePull, Payload: "junk"})
	// Detach the device so a second publish goes unacked, then sweep
	// past the stuck threshold → bundle.repairs and bundle.lagging.
	bus.Detach("d1")
	if _, err := dist.Publish(nil); err != nil {
		t.Fatal(err)
	}
	dist.RepairSweep()
	dist.RepairSweep()
	// A pull request exercises bundle.pulls.
	_ = bus.Send(network.Message{From: "d1", To: dist.id, Topic: TopicBundlePull,
		Payload: BundlePull{Device: "d1", Have: 0}})

	// The residual specialization counters must have moved at their
	// real call site: every dispatched command above decided through
	// the device's residual, so at least one specialization compiled.
	if v := reg.Counter("policy.residual_compiles", "device", "d1").Value(); v == 0 {
		t.Error("policy.residual_compiles never incremented: commands did not decide through a residual")
	}

	if err := telemetry.CheckNames(reg.Names()); err != nil {
		t.Errorf("metric name audit failed:\n%v", err)
	}
}
