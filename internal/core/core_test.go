package core

import (
	"errors"
	"math/rand"
	"testing"

	"repro/internal/audit"
	"repro/internal/device"
	"repro/internal/guard"
	"repro/internal/ontology"
	"repro/internal/policy"
	"repro/internal/statespace"
)

func coreSchema(t *testing.T) *statespace.Schema {
	t.Helper()
	s, err := statespace.NewSchema(
		statespace.Var("heat", 0, 100),
		statespace.Var("fuel", 0, 100),
	)
	if err != nil {
		t.Fatalf("NewSchema: %v", err)
	}
	return s
}

func heatClassifier() statespace.Classifier {
	return statespace.ClassifierFunc(func(st statespace.State) statespace.Class {
		if st.MustGet("heat") >= 80 {
			return statespace.ClassBad
		}
		return statespace.ClassGood
	})
}

func newCollective(t *testing.T, mutate ...func(*Config)) *Collective {
	t.Helper()
	cfg := Config{
		Name:       "test-collective",
		KillSecret: []byte("quorum-secret"),
		Classifier: heatClassifier(),
	}
	for _, m := range mutate {
		m(&cfg)
	}
	c, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return c
}

func newMember(t *testing.T, c *Collective, id string, heat float64) *device.Device {
	t.Helper()
	s := coreSchema(t)
	initial, err := s.StateFromMap(map[string]float64{"heat": heat, "fuel": 50})
	if err != nil {
		t.Fatalf("StateFromMap: %v", err)
	}
	d, err := device.New(device.Config{
		ID:         id,
		Type:       "drone",
		Initial:    initial,
		KillSwitch: c.KillSwitch(),
	})
	if err != nil {
		t.Fatalf("device.New: %v", err)
	}
	return d
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{KillSecret: []byte("x")}); err == nil {
		t.Error("nameless collective accepted")
	}
	if _, err := New(Config{Name: "c"}); err == nil {
		t.Error("missing kill secret accepted")
	}
	c := newCollective(t)
	if c.Name() != "test-collective" || c.Audit() == nil || c.Registry() == nil ||
		c.Coalition() == nil || c.Watchdog() == nil {
		t.Error("accessors wrong")
	}
}

func TestAddRemoveDevice(t *testing.T) {
	c := newCollective(t)
	d := newMember(t, c, "d1", 10)
	if err := c.AddDevice(d, map[string]float64{"range": 5}); err != nil {
		t.Fatalf("AddDevice: %v", err)
	}
	if err := c.AddDevice(d, nil); err == nil {
		t.Error("duplicate add accepted")
	}
	if err := c.AddDevice(nil, nil); err == nil {
		t.Error("nil device accepted")
	}
	got, ok := c.Device("d1")
	if !ok || got.ID() != "d1" {
		t.Error("Device lookup failed")
	}
	info, ok := c.Registry().Get("d1")
	if !ok || info.Attrs["range"] != 5 {
		t.Errorf("registry = %+v,%v", info, ok)
	}
	if len(c.Devices()) != 1 || len(c.MemberStates()) != 1 {
		t.Error("membership wrong")
	}
	if !c.RemoveDevice("d1") || c.RemoveDevice("d1") {
		t.Error("RemoveDevice semantics wrong")
	}
	if c.Registry().Len() != 0 {
		t.Error("registry not cleaned up")
	}
}

func TestAdmissionControlGate(t *testing.T) {
	admission := &guard.AdmissionController{
		Assessor: &guard.AggregateAssessor{Rules: []guard.AggregateRule{
			{Name: "total-heat", Variable: "heat", Kind: guard.AggregateSum, Limit: 100},
		}},
		HitRate: 1,
		Rand:    rand.New(rand.NewSource(1)).Float64,
	}
	c := newCollective(t, func(cfg *Config) { cfg.Admission = admission })

	if err := c.AddDevice(newMember(t, c, "a", 60), nil); err != nil {
		t.Fatalf("first device refused: %v", err)
	}
	err := c.AddDevice(newMember(t, c, "b", 60), nil)
	if !errors.Is(err, ErrAdmissionRefused) {
		t.Errorf("aggregate-violating admission = %v", err)
	}
	if err := c.AddDevice(newMember(t, c, "c", 10), nil); err != nil {
		t.Errorf("safe admission refused: %v", err)
	}
}

func TestDeliverAndDenialFeedsWatchdog(t *testing.T) {
	c := newCollective(t, func(cfg *Config) { cfg.DenialThreshold = 2 })
	d := newMember(t, c, "d1", 10)
	d.SetGuard(guard.NewPipeline(nil, denyAllGuard{}))
	if err := d.Policies().Add(policy.Policy{
		ID: "p", EventType: "go", Modality: policy.ModalityDo,
		Action: policy.Action{Name: "strike"},
	}); err != nil {
		t.Fatalf("Add: %v", err)
	}
	if err := c.AddDevice(d, nil); err != nil {
		t.Fatalf("AddDevice: %v", err)
	}
	if _, err := c.Deliver("ghost", policy.Event{Type: "go"}); !errors.Is(err, ErrUnknownDevice) {
		t.Errorf("unknown deliver = %v", err)
	}
	for i := 0; i < 2; i++ {
		if _, err := c.Deliver("d1", policy.Event{Type: "go"}); err != nil {
			t.Fatalf("Deliver: %v", err)
		}
	}
	deactivated, _ := c.SweepWatchdog()
	if len(deactivated) != 1 || deactivated[0] != "d1" {
		t.Errorf("deactivated = %v", deactivated)
	}
	if c.ActiveCount() != 0 {
		t.Errorf("ActiveCount = %d", c.ActiveCount())
	}
}

type denyAllGuard struct{}

func (denyAllGuard) Name() string { return "deny" }
func (denyAllGuard) Check(guard.ActionContext) guard.Verdict {
	return guard.Verdict{Decision: guard.DecisionDeny, Guard: "deny", Reason: "test"}
}

func TestWatchdogDeactivatesBadStateMember(t *testing.T) {
	c := newCollective(t)
	bad := newMember(t, c, "hot", 95)
	good := newMember(t, c, "cool", 10)
	if err := c.AddDevice(bad, nil); err != nil {
		t.Fatalf("AddDevice: %v", err)
	}
	if err := c.AddDevice(good, nil); err != nil {
		t.Fatalf("AddDevice: %v", err)
	}
	deactivated, failed := c.SweepWatchdog()
	if len(deactivated) != 1 || deactivated[0] != "hot" || len(failed) != 0 {
		t.Errorf("deactivated=%v failed=%v", deactivated, failed)
	}
	if c.ActiveCount() != 1 {
		t.Errorf("ActiveCount = %d", c.ActiveCount())
	}
	if len(c.Audit().ByKind(audit.KindDeactivate)) != 1 {
		t.Error("deactivation not audited")
	}
}

func TestCommandFansOut(t *testing.T) {
	c := newCollective(t)
	for _, id := range []string{"a", "b"} {
		d := newMember(t, c, id, 10)
		if err := d.Policies().Add(policy.Policy{
			ID: "react", EventType: "patrol", Modality: policy.ModalityDo,
			Action: policy.Action{Name: "observe"},
		}); err != nil {
			t.Fatalf("Add: %v", err)
		}
		if err := c.AddDevice(d, nil); err != nil {
			t.Fatalf("AddDevice: %v", err)
		}
	}
	out := c.Command(policy.Event{Type: "patrol", Source: "human-1"})
	if len(out) != 2 || len(out["a"]) != 1 || !out["a"][0].Executed() {
		t.Errorf("Command = %+v", out)
	}
}

func TestRouterCollaboration(t *testing.T) {
	c := newCollective(t)
	// Drone sees smoke, dispatches the chem drone; the chem drone
	// reacts to the routed event — Figure 1's collaboration.
	drone := newMember(t, c, "drone-1", 10)
	if err := drone.Policies().Add(policy.Policy{
		ID: "escalate", EventType: "smoke-detected", Modality: policy.ModalityDo,
		Action: policy.Action{
			Name: "request-survey", Target: "chem-1",
			Params: map[string]string{"area": "ridge"},
		},
	}); err != nil {
		t.Fatalf("Add: %v", err)
	}

	chem := newMember(t, c, "chem-1", 10)
	surveyed := 0
	if err := chem.Policies().Add(policy.Policy{
		ID: "survey", EventType: "request-survey", Modality: policy.ModalityDo,
		Action: policy.Action{Name: "run-chem-survey"},
	}); err != nil {
		t.Fatalf("Add: %v", err)
	}
	if err := chem.RegisterActuator("run-chem-survey", device.ActuatorFunc{
		Label: "chem-sensor",
		Fn:    func(policy.Action) error { surveyed++; return nil },
	}); err != nil {
		t.Fatalf("RegisterActuator: %v", err)
	}

	if err := c.AddDevice(drone, nil); err != nil {
		t.Fatalf("AddDevice: %v", err)
	}
	if err := c.AddDevice(chem, nil); err != nil {
		t.Fatalf("AddDevice: %v", err)
	}
	drone.SetDefaultActuator(c.RouterFor("drone-1"))

	execs, err := c.Deliver("drone-1", policy.Event{Type: "smoke-detected", Source: "sensor"})
	if err != nil || len(execs) != 1 || !execs[0].Executed() {
		t.Fatalf("drone execs = %+v, %v", execs, err)
	}
	if surveyed != 1 {
		t.Errorf("chem drone surveyed %d times, want 1", surveyed)
	}
	// Untargeted actions pass through the router harmlessly.
	router := c.RouterFor("drone-1")
	if err := router.Invoke(policy.Action{Name: "spin"}); err != nil {
		t.Errorf("untargeted router invoke: %v", err)
	}
}

func TestStandardPipelineAssembly(t *testing.T) {
	s := coreSchema(t)
	log := audit.New()
	model := statespace.NewDerivativeModel(s)
	if err := model.SetSign("heat", statespace.SignDecreasing); err != nil {
		t.Fatalf("SetSign: %v", err)
	}
	g := StandardPipeline(SafetyConfig{
		Audit:           log,
		HarmPredictor:   guard.HarmPredictorFunc(func(guard.ActionContext) float64 { return 0 }),
		Classifier:      heatClassifier(),
		UtilityModel:    model,
		MaxPainIncrease: 0.2,
		TamperSecret:    []byte("seal"),
	})
	curr, _ := s.StateFromMap(map[string]float64{"heat": 10})
	next, _ := s.StateFromMap(map[string]float64{"heat": 20})
	v := g.Check(guard.ActionContext{
		Actor: "d", Action: policy.Action{Name: "a"}, State: curr, Next: next,
	})
	if !v.Allowed() {
		t.Errorf("benign action denied: %+v", v)
	}
	badNext, _ := s.StateFromMap(map[string]float64{"heat": 90})
	v = g.Check(guard.ActionContext{
		Actor: "d", Action: policy.Action{Name: "a"}, State: curr, Next: badNext,
	})
	if v.Allowed() {
		t.Error("bad transition allowed")
	}
}

func TestStandardPipelineWithObligations(t *testing.T) {
	tx := ontology.NewTaxonomy()
	if err := tx.AddIsA("dig-hole", "terrain-change"); err != nil {
		t.Fatalf("AddIsA: %v", err)
	}
	oo := ontology.NewObligationOntology(tx)
	if err := oo.Register(ontology.Obligation{Name: "post-sign", AppliesTo: "terrain-change", Cost: 1}); err != nil {
		t.Fatalf("Register: %v", err)
	}
	g := StandardPipeline(SafetyConfig{Obligations: oo})

	s := coreSchema(t)
	v := g.Check(guard.ActionContext{
		Actor:  "d",
		Action: policy.Action{Name: "dig", Category: "dig-hole"},
		State:  s.Origin(),
		Next:   s.Origin(),
	})
	if !v.Allowed() || len(v.Action.Obligations) != 1 {
		t.Errorf("verdict = %+v", v)
	}
}
