package ontology

import (
	"errors"
	"strings"
	"testing"
)

func buildActionTaxonomy(t *testing.T) *Taxonomy {
	t.Helper()
	tx := NewTaxonomy()
	edges := [][2]Concept{
		{"dig-hole", "excavation"},
		{"excavation", "terrain-change"},
		{"terrain-change", "physical-action"},
		{"fire-weapon", "kinetic-action"},
		{"kinetic-action", "physical-action"},
		{"send-message", "information-action"},
	}
	for _, e := range edges {
		if err := tx.AddIsA(e[0], e[1]); err != nil {
			t.Fatalf("AddIsA(%s, %s): %v", e[0], e[1], err)
		}
	}
	return tx
}

func TestTaxonomyIsA(t *testing.T) {
	tx := buildActionTaxonomy(t)
	tests := []struct {
		c, ancestor Concept
		want        bool
	}{
		{c: "dig-hole", ancestor: "excavation", want: true},
		{c: "dig-hole", ancestor: "terrain-change", want: true},
		{c: "dig-hole", ancestor: "physical-action", want: true},
		{c: "dig-hole", ancestor: "dig-hole", want: true},
		{c: "dig-hole", ancestor: "kinetic-action", want: false},
		{c: "physical-action", ancestor: "dig-hole", want: false},
		{c: "missing", ancestor: "physical-action", want: false},
		{c: "dig-hole", ancestor: "missing", want: false},
	}
	for _, tt := range tests {
		if got := tx.IsA(tt.c, tt.ancestor); got != tt.want {
			t.Errorf("IsA(%s, %s) = %v, want %v", tt.c, tt.ancestor, got, tt.want)
		}
	}
}

func TestTaxonomyCycleRejected(t *testing.T) {
	tx := buildActionTaxonomy(t)
	if err := tx.AddIsA("physical-action", "dig-hole"); err == nil {
		t.Error("cycle-creating edge accepted")
	}
	if err := tx.AddIsA("x", "x"); err == nil {
		t.Error("self-edge accepted")
	}
}

func TestTaxonomyAncestors(t *testing.T) {
	tx := buildActionTaxonomy(t)
	got := tx.Ancestors("dig-hole")
	want := []Concept{"excavation", "physical-action", "terrain-change"}
	if len(got) != len(want) {
		t.Fatalf("Ancestors = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("Ancestors[%d] = %s, want %s", i, got[i], want[i])
		}
	}
	if len(tx.Ancestors("physical-action")) != 0 {
		t.Error("root has ancestors")
	}
}

func TestTaxonomyStringAndConcepts(t *testing.T) {
	tx := buildActionTaxonomy(t)
	s := tx.String()
	if !strings.Contains(s, "dig-hole is-a excavation") {
		t.Errorf("String() missing edge:\n%s", s)
	}
	if len(tx.Concepts()) != 8 {
		t.Errorf("Concepts = %v", tx.Concepts())
	}
}

func TestObligationRelevance(t *testing.T) {
	tx := buildActionTaxonomy(t)
	oo := NewObligationOntology(tx)
	obs := []Obligation{
		{Name: "post-warning-sign", AppliesTo: "terrain-change", Mitigates: "human-enters-hazard", Cost: 1},
		{Name: "broadcast-alert", AppliesTo: "physical-action", Mitigates: "human-nearby", Cost: 2},
		{Name: "backfill-after", AppliesTo: "excavation", Mitigates: "permanent-hazard", Cost: 5},
		{Name: "log-message", AppliesTo: "information-action", Mitigates: "misinformation", Cost: 0.5},
	}
	for _, ob := range obs {
		if err := oo.Register(ob); err != nil {
			t.Fatalf("Register(%s): %v", ob.Name, err)
		}
	}
	if oo.Len() != 4 {
		t.Errorf("Len = %d", oo.Len())
	}

	rel := oo.RelevantTo("dig-hole")
	if len(rel) != 3 {
		t.Fatalf("RelevantTo(dig-hole) = %d obligations, want 3", len(rel))
	}
	// Sorted by cost: post-warning-sign (1), broadcast-alert (2), backfill-after (5).
	wantOrder := []string{"post-warning-sign", "broadcast-alert", "backfill-after"}
	for i, w := range wantOrder {
		if rel[i].Name != w {
			t.Errorf("RelevantTo[%d] = %s, want %s", i, rel[i].Name, w)
		}
	}

	if got := oo.RelevantTo("send-message"); len(got) != 1 || got[0].Name != "log-message" {
		t.Errorf("RelevantTo(send-message) = %v", got)
	}
}

func TestObligationRegisterErrors(t *testing.T) {
	tx := buildActionTaxonomy(t)
	oo := NewObligationOntology(tx)
	if err := oo.Register(Obligation{Name: "", AppliesTo: "excavation"}); err == nil {
		t.Error("nameless obligation accepted")
	}
	err := oo.Register(Obligation{Name: "x", AppliesTo: "nope"})
	if !errors.Is(err, ErrUnknownConcept) {
		t.Errorf("unknown concept error = %v", err)
	}
}

func TestSelectWithinBudget(t *testing.T) {
	tx := buildActionTaxonomy(t)
	oo := NewObligationOntology(tx)
	for _, ob := range []Obligation{
		{Name: "cheap", AppliesTo: "excavation", Cost: 1},
		{Name: "mid", AppliesTo: "excavation", Cost: 2},
		{Name: "pricey", AppliesTo: "excavation", Cost: 10},
	} {
		if err := oo.Register(ob); err != nil {
			t.Fatalf("Register: %v", err)
		}
	}
	got := oo.SelectWithinBudget("dig-hole", 3.5)
	if len(got) != 2 || got[0].Name != "cheap" || got[1].Name != "mid" {
		t.Errorf("SelectWithinBudget = %v", got)
	}
	if got := oo.SelectWithinBudget("dig-hole", 0); got != nil {
		t.Errorf("zero budget selected %v", got)
	}
}

func TestPreferenceOntology(t *testing.T) {
	p := NewPreferenceOntology()
	// fire preferred over loss-of-life (i.e. fire is less bad);
	// equipment-damage preferred over fire.
	if err := p.Prefer("fire", "loss-of-life"); err != nil {
		t.Fatalf("Prefer: %v", err)
	}
	if err := p.Prefer("equipment-damage", "fire"); err != nil {
		t.Fatalf("Prefer: %v", err)
	}

	if !p.Preferred("equipment-damage", "loss-of-life") {
		t.Error("transitive preference not derived")
	}
	if p.Preferred("loss-of-life", "equipment-damage") {
		t.Error("inverse preference held")
	}
	best, err := p.Compare("fire", "loss-of-life")
	if err != nil || best != "fire" {
		t.Errorf("Compare = %v,%v", best, err)
	}
	if _, err := p.Compare("fire", "weather"); !errors.Is(err, ErrNoPreference) {
		t.Errorf("incomparable Compare error = %v", err)
	}
	if same, err := p.Compare("fire", "fire"); err != nil || same != "fire" {
		t.Errorf("Compare(x,x) = %v,%v", same, err)
	}
}

func TestPreferenceContradictionRejected(t *testing.T) {
	p := NewPreferenceOntology()
	if err := p.Prefer("a", "b"); err != nil {
		t.Fatalf("Prefer: %v", err)
	}
	if err := p.Prefer("b", "c"); err != nil {
		t.Fatalf("Prefer: %v", err)
	}
	if err := p.Prefer("c", "a"); err == nil {
		t.Error("contradictory (cyclic) preference accepted")
	}
	if err := p.Prefer("a", "a"); err == nil {
		t.Error("self-preference accepted")
	}
}

func TestLeastBad(t *testing.T) {
	p := NewPreferenceOntology()
	mustPrefer(t, p, "fire", "loss-of-life")
	mustPrefer(t, p, "equipment-damage", "fire")
	mustPrefer(t, p, "mission-abort", "loss-of-life")

	got := p.LeastBad([]Outcome{"loss-of-life", "fire", "equipment-damage", "mission-abort"})
	want := []Outcome{"equipment-damage", "mission-abort"}
	if len(got) != len(want) {
		t.Fatalf("LeastBad = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("LeastBad[%d] = %s, want %s", i, got[i], want[i])
		}
	}
	if got := p.LeastBad(nil); got != nil {
		t.Errorf("LeastBad(nil) = %v", got)
	}
	// The paper's canonical dilemma: prefer fire over loss of life.
	if got := p.LeastBad([]Outcome{"loss-of-life", "fire"}); len(got) != 1 || got[0] != "fire" {
		t.Errorf("dilemma resolution = %v, want [fire]", got)
	}
}

func TestOutcomes(t *testing.T) {
	p := NewPreferenceOntology()
	mustPrefer(t, p, "b", "c")
	mustPrefer(t, p, "a", "b")
	got := p.Outcomes()
	want := []Outcome{"a", "b", "c"}
	if len(got) != len(want) {
		t.Fatalf("Outcomes = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("Outcomes[%d] = %s, want %s", i, got[i], want[i])
		}
	}
}

func mustPrefer(t *testing.T, p *PreferenceOntology, a, b Outcome) {
	t.Helper()
	if err := p.Prefer(a, b); err != nil {
		t.Fatalf("Prefer(%s, %s): %v", a, b, err)
	}
}
