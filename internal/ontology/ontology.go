// Package ontology provides the lightweight ontologies the paper's
// prevention mechanisms rely on:
//
//   - a concept taxonomy with is-a relations (used to organize action
//     and situation categories);
//   - an obligation ontology (Section VI.A): obligations indexed by the
//     action categories they are relevant to, "so that devices can
//     automatically select the ones most relevant to their actions";
//   - a state-preference ontology (Section VI.B): a preference relation
//     over outcome categories that lets a device forced to choose
//     between two bad states select the "less bad" one.
package ontology

import (
	"errors"
	"fmt"
	"sort"
	"strings"
)

// ErrUnknownConcept is returned when an operation references a concept
// that was never defined.
var ErrUnknownConcept = errors.New("ontology: unknown concept")

// Concept is the name of a node in the taxonomy.
type Concept string

// Taxonomy is a directed acyclic is-a hierarchy of concepts. It is not
// safe for concurrent mutation; build it up front and share it
// read-only.
type Taxonomy struct {
	parents map[Concept][]Concept
}

// NewTaxonomy returns an empty taxonomy.
func NewTaxonomy() *Taxonomy {
	return &Taxonomy{parents: make(map[Concept][]Concept)}
}

// Add declares a concept with no parents (a root). Adding an existing
// concept is a no-op.
func (t *Taxonomy) Add(c Concept) {
	if _, ok := t.parents[c]; !ok {
		t.parents[c] = nil
	}
}

// AddIsA declares that child is-a parent. Both concepts are created if
// absent. It returns an error if the edge would create a cycle.
func (t *Taxonomy) AddIsA(child, parent Concept) error {
	t.Add(parent)
	t.Add(child)
	if child == parent || t.IsA(parent, child) {
		return fmt.Errorf("ontology: edge %s is-a %s would create a cycle", child, parent)
	}
	t.parents[child] = append(t.parents[child], parent)
	return nil
}

// Has reports whether the concept is defined.
func (t *Taxonomy) Has(c Concept) bool {
	_, ok := t.parents[c]
	return ok
}

// IsA reports whether c is the concept ancestor or a (transitive)
// descendant of it. Every concept is-a itself.
func (t *Taxonomy) IsA(c, ancestor Concept) bool {
	if !t.Has(c) || !t.Has(ancestor) {
		return false
	}
	if c == ancestor {
		return true
	}
	for _, p := range t.parents[c] {
		if t.IsA(p, ancestor) {
			return true
		}
	}
	return false
}

// Ancestors returns every concept c transitively is-a, excluding c
// itself, in deterministic (sorted) order.
func (t *Taxonomy) Ancestors(c Concept) []Concept {
	seen := make(map[Concept]bool)
	var walk func(Concept)
	walk = func(x Concept) {
		for _, p := range t.parents[x] {
			if !seen[p] {
				seen[p] = true
				walk(p)
			}
		}
	}
	walk(c)
	out := make([]Concept, 0, len(seen))
	for p := range seen {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Concepts returns every defined concept in deterministic order.
func (t *Taxonomy) Concepts() []Concept {
	out := make([]Concept, 0, len(t.parents))
	for c := range t.parents {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// String renders the taxonomy edges deterministically.
func (t *Taxonomy) String() string {
	var lines []string
	for _, c := range t.Concepts() {
		ps := t.parents[c]
		if len(ps) == 0 {
			lines = append(lines, string(c))
			continue
		}
		names := make([]string, len(ps))
		for i, p := range ps {
			names[i] = string(p)
		}
		sort.Strings(names)
		lines = append(lines, fmt.Sprintf("%s is-a %s", c, strings.Join(names, ", ")))
	}
	return strings.Join(lines, "\n")
}
