package ontology

import (
	"fmt"
	"sort"
)

// Obligation is a follow-up action that must be executed after (or
// while) a primary action executes, to prevent indirect harm
// (Section VI.A: "possible obligations would include posting notices
// indicating the hole, broadcasting messages to humans approaching the
// location of the hole, and so forth").
type Obligation struct {
	// Name identifies the obligation (e.g. "post-warning-sign").
	Name string
	// AppliesTo is the action-category concept the obligation is
	// relevant to; it matches any action whose category is-a this
	// concept.
	AppliesTo Concept
	// Mitigates describes the indirect-harm mode the obligation
	// addresses (e.g. "human-enters-hazard").
	Mitigates string
	// Cost is the relative expense of discharging the obligation; used
	// to rank obligations when budget is limited.
	Cost float64
}

// ObligationOntology indexes obligations by the action categories they
// are relevant to, over a shared taxonomy of action categories.
type ObligationOntology struct {
	taxonomy    *Taxonomy
	obligations []Obligation
}

// NewObligationOntology builds an ontology over the given action-
// category taxonomy.
func NewObligationOntology(taxonomy *Taxonomy) *ObligationOntology {
	return &ObligationOntology{taxonomy: taxonomy}
}

// Register adds an obligation. The obligation's AppliesTo concept must
// exist in the taxonomy.
func (o *ObligationOntology) Register(ob Obligation) error {
	if ob.Name == "" {
		return fmt.Errorf("ontology: obligation needs a name")
	}
	if !o.taxonomy.Has(ob.AppliesTo) {
		return fmt.Errorf("%w: %s (obligation %s)", ErrUnknownConcept, ob.AppliesTo, ob.Name)
	}
	o.obligations = append(o.obligations, ob)
	return nil
}

// Len returns the number of registered obligations.
func (o *ObligationOntology) Len() int { return len(o.obligations) }

// RelevantTo returns the obligations applicable to an action of the
// given category — those whose AppliesTo concept is an ancestor of (or
// equal to) the category — sorted by ascending cost then name. This is
// the automatic relevance selection Section VI.A calls "the main
// interesting challenge".
func (o *ObligationOntology) RelevantTo(category Concept) []Obligation {
	var out []Obligation
	for _, ob := range o.obligations {
		if o.taxonomy.IsA(category, ob.AppliesTo) {
			out = append(out, ob)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Cost != out[j].Cost {
			return out[i].Cost < out[j].Cost
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// SelectWithinBudget returns the cheapest relevant obligations whose
// cumulative cost does not exceed budget, preserving RelevantTo order.
// A zero or negative budget selects nothing.
func (o *ObligationOntology) SelectWithinBudget(category Concept, budget float64) []Obligation {
	var out []Obligation
	total := 0.0
	for _, ob := range o.RelevantTo(category) {
		if total+ob.Cost > budget {
			continue
		}
		total += ob.Cost
		out = append(out, ob)
	}
	return out
}
