package ontology

import (
	"errors"
	"fmt"
	"sort"
)

// ErrNoPreference is returned when two outcomes cannot be compared
// under the preference ontology.
var ErrNoPreference = errors.New("ontology: outcomes incomparable")

// Outcome is a named category of result state used in preference
// comparisons (e.g. "loss-of-life", "fire", "equipment-damage").
type Outcome string

// PreferenceOntology is the state-preference ontology of Section VI.B:
// "Organizing the set of bad states into such an ontology allows a
// device, which has to decide between two bad states, to select the
// 'less bad' state." It is a strict partial order declared as
// preferred-over edges, with transitive closure.
//
// The design follows preference graphs from constraint satisfaction and
// optimization (paper ref [14], Rossi, Venable & Walsh).
type PreferenceOntology struct {
	better map[Outcome]map[Outcome]bool // better[a][b]: a preferred over b
}

// NewPreferenceOntology returns an empty preference ontology.
func NewPreferenceOntology() *PreferenceOntology {
	return &PreferenceOntology{better: make(map[Outcome]map[Outcome]bool)}
}

// Prefer declares that outcome a is preferred over outcome b (a is
// "less bad"). It returns an error if the edge would contradict an
// existing (transitive) preference.
func (p *PreferenceOntology) Prefer(a, b Outcome) error {
	if a == b {
		return fmt.Errorf("ontology: cannot prefer %s over itself", a)
	}
	if p.Preferred(b, a) {
		return fmt.Errorf("ontology: %s already preferred over %s; edge would contradict", b, a)
	}
	if p.better[a] == nil {
		p.better[a] = make(map[Outcome]bool)
	}
	p.better[a][b] = true
	return nil
}

// Preferred reports whether a is (transitively) preferred over b.
func (p *PreferenceOntology) Preferred(a, b Outcome) bool {
	if a == b {
		return false
	}
	seen := make(map[Outcome]bool)
	var walk func(Outcome) bool
	walk = func(x Outcome) bool {
		if p.better[x][b] {
			return true
		}
		for next := range p.better[x] {
			if !seen[next] {
				seen[next] = true
				if walk(next) {
					return true
				}
			}
		}
		return false
	}
	return walk(a)
}

// Compare returns the preferred outcome of the two, or ErrNoPreference
// if they are incomparable.
func (p *PreferenceOntology) Compare(a, b Outcome) (Outcome, error) {
	switch {
	case p.Preferred(a, b):
		return a, nil
	case p.Preferred(b, a):
		return b, nil
	case a == b:
		return a, nil
	default:
		return "", fmt.Errorf("%w: %s vs %s", ErrNoPreference, a, b)
	}
}

// LeastBad returns the outcomes from candidates that no other candidate
// is preferred over (the maximal elements of the partial order),
// deterministically sorted. An empty input yields nil.
func (p *PreferenceOntology) LeastBad(candidates []Outcome) []Outcome {
	var out []Outcome
	for i, c := range candidates {
		dominated := false
		for j, other := range candidates {
			if i == j {
				continue
			}
			if p.Preferred(other, c) {
				dominated = true
				break
			}
		}
		if !dominated {
			out = append(out, c)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return dedupe(out)
}

// Outcomes returns every outcome mentioned by any preference edge,
// sorted.
func (p *PreferenceOntology) Outcomes() []Outcome {
	set := make(map[Outcome]bool)
	for a, bs := range p.better {
		set[a] = true
		for b := range bs {
			set[b] = true
		}
	}
	out := make([]Outcome, 0, len(set))
	for o := range set {
		out = append(out, o)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func dedupe(in []Outcome) []Outcome {
	var out []Outcome
	for i, o := range in {
		if i == 0 || o != in[i-1] {
			out = append(out, o)
		}
	}
	return out
}
