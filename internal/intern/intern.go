// Package intern provides string interning for the hot label paths of
// the fleet: event types, bus topics, action names, audit kinds, and
// device IDs. Interning turns repeated string comparisons and map keys
// into integer comparisons and dense slice indices, which is what lets
// the simulator keep per-entity bookkeeping in flat arrays instead of
// string-keyed maps.
//
// A Table is two-level:
//
//   - a preloaded level built at construction time and immutable
//     afterwards, so lookups of well-known strings (topics, event
//     types, action names) are lock-free map reads; and
//   - a mutex-guarded spill level for strings discovered at runtime
//     (device IDs, scenario-specific labels).
//
// IDs are dense and start at 1; ID 0 is reserved for "not interned"
// (the zero value), so intern.ID fields of zero-initialised structs
// are naturally invalid. For a given Table, interning the same string
// twice always yields the same ID and the same canonical string
// pointer, regardless of which goroutine got there first.
package intern

import "sync"

// ID identifies an interned string within a Table. The zero ID is
// invalid and never assigned.
type ID uint32

// None is the zero ID, returned for strings that are not interned
// (by Lookup) and never assigned by Of.
const None ID = 0

// Table interns strings to dense IDs. The zero Table is not usable;
// construct with NewTable.
type Table struct {
	preloaded map[string]ID // immutable after NewTable

	mu    sync.RWMutex
	spill map[string]ID
	strs  []string // index ID-1 -> canonical string (preloaded prefix immutable)
}

// NewTable builds a table with the given strings preloaded.
// Duplicates are tolerated and intern to one ID. Lookups of preloaded
// strings never take a lock.
func NewTable(preload ...string) *Table {
	t := &Table{
		preloaded: make(map[string]ID, len(preload)),
		spill:     make(map[string]ID),
		strs:      make([]string, 0, len(preload)+16),
	}
	for _, s := range preload {
		if _, ok := t.preloaded[s]; ok {
			continue
		}
		t.strs = append(t.strs, s)
		t.preloaded[s] = ID(len(t.strs))
	}
	return t
}

// Of returns the ID for s, interning it if necessary.
func (t *Table) Of(s string) ID {
	if id, ok := t.preloaded[s]; ok {
		return id
	}
	t.mu.RLock()
	id, ok := t.spill[s]
	t.mu.RUnlock()
	if ok {
		return id
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if id, ok := t.spill[s]; ok {
		return id
	}
	t.strs = append(t.strs, s)
	id = ID(len(t.strs))
	t.spill[s] = id
	return id
}

// Lookup returns the ID for s if it is already interned, or None.
// It never interns.
func (t *Table) Lookup(s string) ID {
	if id, ok := t.preloaded[s]; ok {
		return id
	}
	t.mu.RLock()
	id := t.spill[s]
	t.mu.RUnlock()
	return id
}

// Str returns the canonical string for id, or "" if id is None or out
// of range. The returned string is the single canonical copy held by
// the table, so retaining it does not pin caller-built buffers.
func (t *Table) Str(id ID) string {
	if id == None {
		return ""
	}
	i := int(id) - 1
	if i < len(t.preloaded) { // immutable prefix: no lock needed
		return t.strs[i]
	}
	t.mu.RLock()
	defer t.mu.RUnlock()
	if i >= len(t.strs) {
		return ""
	}
	return t.strs[i]
}

// Canonical returns the canonical copy of s, interning it if
// necessary. Use this to deduplicate retained strings (e.g. device
// IDs stored in long-lived journal entries).
func (t *Table) Canonical(s string) string {
	return t.Str(t.Of(s))
}

// Len reports how many distinct strings the table holds.
func (t *Table) Len() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.strs)
}

// Well-known strings preloaded into the default table. Keeping them
// here (rather than scattered through packages) makes the lock-free
// fast path cover every label the MAPE hot loop touches.
var wellKnown = []string{
	// bus topics
	"command", "action", "guard", "oversight", "bundle", "bundle_ack",
	"bundle_pull", "gossip", "telemetry", "repair", "status",
	// event types
	"self-state-alert", "command-event", "tick",
	// audit kinds
	"action", "denial", "obligation", "command", "admission",
	"bundle-activate", "bundle-reject", "watchdog", "break-glass",
	// common action names
	"no-op", "cool", "vent", "shutdown", "throttle",
}

var defaultTable = NewTable(wellKnown...)

// Default returns the process-wide table used by the package-level
// helpers.
func Default() *Table { return defaultTable }

// Of interns s in the default table.
func Of(s string) ID { return defaultTable.Of(s) }

// Lookup looks up s in the default table without interning.
func Lookup(s string) ID { return defaultTable.Lookup(s) }

// Str resolves id against the default table.
func Str(id ID) string { return defaultTable.Str(id) }

// Canonical returns the canonical copy of s from the default table.
func Canonical(s string) string { return defaultTable.Canonical(s) }

// Dedup returns a canonical string equal to b. It deduplicates
// repeatedly-rendered retained strings (guard denial reasons, audit
// action details) whose value set is small but not known up front:
// the steady-state cost of rendering the same reason a million times
// drops to a map lookup. Unlike Table, Dedup assigns no IDs, and the
// cache is bounded — once full, new strings are returned uncached
// (one allocation, no growth).
func Dedup(b []byte) string {
	dedup.RLock()
	s, ok := dedup.m[string(b)]
	dedup.RUnlock()
	if ok {
		return s
	}
	s = string(b)
	dedup.Lock()
	if cached, ok := dedup.m[s]; ok {
		s = cached
	} else if len(dedup.m) < dedupCap {
		dedup.m[s] = s
	}
	dedup.Unlock()
	return s
}

// dedupCap bounds the Dedup cache: high-cardinality renderings (e.g.
// reasons embedding full state vectors on a long chaotic run) stop
// being cached rather than growing the table without limit.
const dedupCap = 8192

var dedup = struct {
	sync.RWMutex
	m map[string]string
}{m: make(map[string]string, 256)}
