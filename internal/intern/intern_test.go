package intern

import (
	"fmt"
	"sync"
	"testing"
)

func TestPreloadedAndSpill(t *testing.T) {
	tb := NewTable("alpha", "beta", "alpha")
	if got := tb.Len(); got != 2 {
		t.Fatalf("Len after duplicate preload = %d, want 2", got)
	}
	a := tb.Of("alpha")
	if a == None {
		t.Fatal("preloaded string interned to None")
	}
	if tb.Of("alpha") != a {
		t.Fatal("re-interning preloaded string changed ID")
	}
	c := tb.Of("gamma")
	if c == a || c == None {
		t.Fatalf("spill ID %d collides or is None", c)
	}
	if tb.Str(c) != "gamma" {
		t.Fatalf("Str(%d) = %q, want gamma", c, tb.Str(c))
	}
	if tb.Lookup("delta") != None {
		t.Fatal("Lookup of unknown string should be None")
	}
	if tb.Str(None) != "" {
		t.Fatal("Str(None) should be empty")
	}
	if tb.Str(ID(999)) != "" {
		t.Fatal("Str out of range should be empty")
	}
}

// TestConcurrentInterning is the satellite concurrency property:
// parallel interning of overlapping string sets yields exactly one
// canonical ID and one canonical string pointer per distinct string,
// with no duplicate IDs.
func TestConcurrentInterning(t *testing.T) {
	tb := NewTable("shared-0", "shared-1")
	const goroutines = 16
	const perSet = 200

	results := make([]map[string]ID, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			seen := make(map[string]ID, perSet)
			// Overlapping sets: every goroutine interns the same
			// perSet strings, in a goroutine-dependent order.
			for i := 0; i < perSet; i++ {
				k := (i*7 + g*13) % perSet
				s := fmt.Sprintf("shared-%d", k)
				seen[s] = tb.Of(s)
			}
			results[g] = seen
		}(g)
	}
	wg.Wait()

	// All goroutines agree on every ID.
	for g := 1; g < goroutines; g++ {
		for s, id := range results[g] {
			if results[0][s] != id {
				t.Fatalf("goroutine %d interned %q as %d, goroutine 0 as %d", g, s, id, results[0][s])
			}
		}
	}
	// No duplicate IDs across distinct strings.
	byID := make(map[ID]string)
	for s, id := range results[0] {
		if prev, ok := byID[id]; ok && prev != s {
			t.Fatalf("ID %d assigned to both %q and %q", id, prev, s)
		}
		byID[id] = s
	}
	if got := tb.Len(); got != perSet {
		t.Fatalf("table holds %d strings, want %d", got, perSet)
	}
	// Canonical returns the same backing string every time.
	c1 := tb.Canonical("shared-3")
	c2 := tb.Canonical("shared-" + fmt.Sprint(3))
	if c1 != c2 {
		t.Fatal("Canonical returned different strings for equal input")
	}
}

func TestDefaultTable(t *testing.T) {
	if Of("command") == None {
		t.Fatal("well-known topic not interned")
	}
	if Str(Of("action")) != "action" {
		t.Fatal("default table round-trip failed")
	}
	if Canonical("some-device-7") != "some-device-7" {
		t.Fatal("Canonical changed string content")
	}
}
