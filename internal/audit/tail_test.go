package audit

import (
	"errors"
	"fmt"
	"testing"
)

// TestEntriesSinceAndVerifyTail covers the streaming-read contract:
// every (from, prevHash, tail) triple EntriesSince hands out must
// pass VerifyTail, including the empty tail at the tip.
func TestEntriesSinceAndVerifyTail(t *testing.T) {
	l := New(WithClock(fixedClock()))
	for i := 0; i < 8; i++ {
		l.Append(KindAction, "actor", fmt.Sprintf("step %d", i), map[string]string{"i": fmt.Sprint(i)})
	}
	for from := 0; from <= l.Len(); from++ {
		tail, prev := l.EntriesSince(from)
		if want := l.Len() - from; len(tail) != want {
			t.Fatalf("EntriesSince(%d) len = %d, want %d", from, len(tail), want)
		}
		if err := VerifyTail(from, prev, tail); err != nil {
			t.Errorf("VerifyTail(%d): %v", from, err)
		}
	}
	// The tip: empty tail, anchored on the last entry's hash.
	tail, prev := l.EntriesSince(l.Len())
	if len(tail) != 0 {
		t.Fatalf("tip tail = %d entries, want 0", len(tail))
	}
	all := l.Entries()
	if prev != all[len(all)-1].Hash {
		t.Errorf("tip anchor = %q, want last hash %q", prev, all[len(all)-1].Hash)
	}
	// Appending after the tip read chains onto the returned anchor.
	l.Append(KindNote, "actor", "later", nil)
	next, _ := l.EntriesSince(l.Len() - 1)
	if err := VerifyTail(l.Len()-1, prev, next); err != nil {
		t.Errorf("VerifyTail across tip read: %v", err)
	}
}

// TestEntriesSinceClamps checks the out-of-range conventions.
func TestEntriesSinceClamps(t *testing.T) {
	l := New(WithClock(fixedClock()))
	l.Append(KindAction, "a", "d", nil)
	if tail, prev := l.EntriesSince(-3); len(tail) != 1 || prev != "" {
		t.Errorf("EntriesSince(-3) = %d entries, anchor %q; want 1, \"\"", len(tail), prev)
	}
	if tail, _ := l.EntriesSince(99); tail != nil {
		t.Errorf("EntriesSince(beyond) = %d entries, want nil", len(tail))
	}
}

// TestVerifyTailDetectsTamper verifies the tail checker catches a
// wrong anchor, edited content, dropped entries and bad indices.
func TestVerifyTailDetectsTamper(t *testing.T) {
	l := New(WithClock(fixedClock()))
	for i := 0; i < 6; i++ {
		l.Append(KindAction, "actor", "detail", nil)
	}
	tail, prev := l.EntriesSince(2)

	if err := VerifyTail(2, "bogus", tail); !errors.Is(err, ErrChainBroken) {
		t.Errorf("wrong anchor: err = %v, want ErrChainBroken", err)
	}
	edited := make([]Entry, len(tail))
	copy(edited, tail)
	edited[1].Detail = "tampered"
	if err := VerifyTail(2, prev, edited); !errors.Is(err, ErrChainBroken) {
		t.Errorf("edited tail: err = %v, want ErrChainBroken", err)
	}
	if err := VerifyTail(2, prev, append([]Entry{}, tail[1:]...)); !errors.Is(err, ErrChainBroken) {
		t.Errorf("dropped head of tail: err = %v, want ErrChainBroken", err)
	}
	if err := VerifyTail(3, prev, tail); !errors.Is(err, ErrChainBroken) {
		t.Errorf("wrong from index: err = %v, want ErrChainBroken", err)
	}
	if err := VerifyTail(-1, prev, tail); !errors.Is(err, ErrChainBroken) {
		t.Errorf("negative from: err = %v, want ErrChainBroken", err)
	}
	if err := VerifyTail(2, prev, tail); err != nil {
		t.Errorf("intact tail: %v", err)
	}
}
