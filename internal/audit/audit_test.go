package audit

import (
	"encoding/json"
	"errors"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func fixedClock() func() time.Time {
	t0 := time.Date(2026, 7, 6, 12, 0, 0, 0, time.UTC)
	n := 0
	return func() time.Time {
		n++
		return t0.Add(time.Duration(n) * time.Second)
	}
}

func TestAppendAndVerify(t *testing.T) {
	l := New(WithClock(fixedClock()))
	e1 := l.Append(KindAction, "drone-1", "moved", nil)
	e2 := l.Append(KindDenial, "drone-1", "blocked fire", map[string]string{"reason": "human in range"})

	if e1.Seq != 0 || e2.Seq != 1 {
		t.Errorf("seq = %d,%d, want 0,1", e1.Seq, e2.Seq)
	}
	if e2.PrevHash != e1.Hash {
		t.Error("entry 2 not chained to entry 1")
	}
	if l.Len() != 2 {
		t.Errorf("Len = %d, want 2", l.Len())
	}
	if err := l.Verify(); err != nil {
		t.Errorf("Verify on intact log: %v", err)
	}
}

func TestVerifyDetectsContentTamper(t *testing.T) {
	l := New(WithClock(fixedClock()))
	l.Append(KindAction, "a", "one", nil)
	l.Append(KindAction, "a", "two", nil)
	l.Append(KindAction, "a", "three", nil)

	entries := l.Entries()
	entries[1].Detail = "TWO (edited)"
	if err := VerifyEntries(entries); !errors.Is(err, ErrChainBroken) {
		t.Errorf("tampered content verified: %v", err)
	}
}

func TestVerifyDetectsDeletion(t *testing.T) {
	l := New(WithClock(fixedClock()))
	for i := 0; i < 4; i++ {
		l.Append(KindAction, "a", "entry", nil)
	}
	entries := l.Entries()
	cut := append(entries[:1:1], entries[2:]...)
	if err := VerifyEntries(cut); !errors.Is(err, ErrChainBroken) {
		t.Errorf("log with deleted entry verified: %v", err)
	}
}

func TestVerifyDetectsReordering(t *testing.T) {
	l := New(WithClock(fixedClock()))
	l.Append(KindAction, "a", "one", nil)
	l.Append(KindAction, "a", "two", nil)
	entries := l.Entries()
	entries[0], entries[1] = entries[1], entries[0]
	if err := VerifyEntries(entries); !errors.Is(err, ErrChainBroken) {
		t.Errorf("reordered log verified: %v", err)
	}
}

func TestByKind(t *testing.T) {
	l := New(WithClock(fixedClock()))
	l.Append(KindAction, "a", "one", nil)
	l.Append(KindBreakGlass, "a", "override", nil)
	l.Append(KindAction, "a", "two", nil)

	bg := l.ByKind(KindBreakGlass)
	if len(bg) != 1 || bg[0].Detail != "override" {
		t.Errorf("ByKind(break-glass) = %+v", bg)
	}
	if got := l.ByKind(KindDeactivate); got != nil {
		t.Errorf("ByKind(missing) = %v, want nil", got)
	}
}

func TestJSONRoundTripVerifies(t *testing.T) {
	l := New(WithClock(fixedClock()))
	l.Append(KindAction, "a", "one", map[string]string{"k": "v"})
	l.Append(KindAdmission, "b", "joined", nil)

	b, err := json.Marshal(l)
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	var entries []Entry
	if err := json.Unmarshal(b, &entries); err != nil {
		t.Fatalf("Unmarshal: %v", err)
	}
	if err := VerifyEntries(entries); err != nil {
		t.Errorf("round-tripped log failed verification: %v", err)
	}
}

func TestSeal(t *testing.T) {
	l := New(WithClock(fixedClock()))
	l.Append(KindAction, "a", "one", nil)
	secret := []byte("quorum-shared-secret")
	seal := l.Seal(secret)
	if !l.CheckSeal(secret, seal) {
		t.Error("seal did not verify against same log")
	}
	l.Append(KindAction, "a", "two", nil)
	if l.CheckSeal(secret, seal) {
		t.Error("stale seal verified after append")
	}
	if l.CheckSeal([]byte("wrong"), seal) {
		t.Error("seal verified under wrong secret")
	}
}

func TestEmptyLog(t *testing.T) {
	l := New()
	if err := l.Verify(); err != nil {
		t.Errorf("Verify on empty log: %v", err)
	}
	if l.Seal([]byte("s")) == "" {
		t.Error("empty log seal is empty")
	}
}

func TestConcurrentAppend(t *testing.T) {
	l := New(WithClock(fixedClock()))
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				l.Append(KindAction, "worker", "op", nil)
			}
		}()
	}
	wg.Wait()
	if l.Len() != 400 {
		t.Errorf("Len = %d, want 400", l.Len())
	}
	if err := l.Verify(); err != nil {
		t.Errorf("Verify after concurrent appends: %v", err)
	}
}

// Property: any single-field mutation of any entry breaks verification.
func TestTamperDetectionProperty(t *testing.T) {
	l := New(WithClock(fixedClock()))
	for i := 0; i < 10; i++ {
		l.Append(KindAction, "actor", "detail", map[string]string{"i": "x"})
	}
	base := l.Entries()

	f := func(idx uint8, field uint8, garbage string) bool {
		if garbage == "" {
			garbage = "tampered"
		}
		entries := make([]Entry, len(base))
		copy(entries, base)
		i := int(idx) % len(entries)
		switch field % 4 {
		case 0:
			if entries[i].Detail == garbage {
				return true
			}
			entries[i].Detail = garbage
		case 1:
			if entries[i].Actor == garbage {
				return true
			}
			entries[i].Actor = garbage
		case 2:
			if string(entries[i].Kind) == garbage {
				return true
			}
			entries[i].Kind = Kind(garbage)
		case 3:
			entries[i].Time = entries[i].Time.Add(time.Minute)
		}
		return VerifyEntries(entries) != nil
	}
	cfg := &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(3))}
	if err := quick.Check(f, cfg); err != nil {
		t.Errorf("tamper went undetected: %v", err)
	}
}
