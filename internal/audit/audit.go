// Package audit provides an append-only, hash-chained audit log.
//
// Several of the paper's prevention mechanisms presuppose trustworthy
// records: break-glass rules "would require support for audits to verify
// that devices did not abuse the break-glass rules" (Section VI.B), and
// deactivation decisions must themselves be reviewable. Each entry binds
// its content to the hash of its predecessor, so any in-place
// modification, deletion, or reordering is detectable by Verify.
package audit

import (
	"crypto/hmac"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"time"
)

// ErrChainBroken is returned by Verify when the hash chain does not
// validate.
var ErrChainBroken = errors.New("audit: hash chain broken")

// Kind labels the category of an audit entry.
type Kind string

// Well-known entry kinds used by the guard layer.
const (
	KindAction     Kind = "action"
	KindDenial     Kind = "denial"
	KindBreakGlass Kind = "break-glass"
	KindDeactivate Kind = "deactivate"
	KindAdmission  Kind = "admission"
	KindOversight  Kind = "oversight"
	KindTamper     Kind = "tamper"
	KindCheckpoint Kind = "checkpoint"
	KindBundle     Kind = "bundle"
	KindNote       Kind = "note"
)

// Entry is one immutable audit record.
type Entry struct {
	// Seq is the zero-based position of the entry in the log.
	Seq int `json:"seq"`
	// Time is the (virtual or wall) time the entry was recorded.
	Time time.Time `json:"time"`
	// Kind categorizes the record.
	Kind Kind `json:"kind"`
	// Actor is the device or collective that caused the record.
	Actor string `json:"actor"`
	// Detail is a human-readable description.
	Detail string `json:"detail"`
	// Context carries structured key/value context (e.g. the state at
	// the time of a break-glass use).
	Context map[string]string `json:"context,omitempty"`
	// PrevHash is the hex hash of the previous entry ("" for the
	// first).
	PrevHash string `json:"prevHash"`
	// Hash is the hex hash of this entry's content including PrevHash.
	Hash string `json:"hash"`
}

// Log is a thread-safe, append-only hash-chained audit log. The zero
// value is ready to use with wall-clock time; use New to inject a
// clock (e.g. a simulation clock).
type Log struct {
	mu      sync.Mutex
	now     func() time.Time
	staged  bool
	entries []Entry
}

// Journal routes audit appends: given the log an append would normally
// target, it returns the log that should receive it instead — e.g. a
// per-lane staging buffer during parallel simulation (sim.Lane
// implements this). Implementations must return nil for a nil base, so
// "auditing disabled" survives routing.
type Journal interface {
	Route(base *Log) *Log
}

// Resolve applies an optional Journal to a base log: a nil journal (or
// nil base) passes the base through unchanged. Append sites that
// support deterministic parallel execution write to Resolve(j, log)
// instead of log.
func Resolve(j Journal, base *Log) *Log {
	if j == nil || base == nil {
		return base
	}
	return j.Route(base)
}

// Option configures a Log.
type Option interface {
	apply(*Log)
}

type clockOption struct{ now func() time.Time }

func (o clockOption) apply(l *Log) { l.now = o.now }

// WithClock injects the time source used to stamp entries.
func WithClock(now func() time.Time) Option {
	return clockOption{now: now}
}

// New returns an empty log.
func New(opts ...Option) *Log {
	l := &Log{}
	for _, o := range opts {
		o.apply(l)
	}
	return l
}

// NewStage returns a staging log: Append buffers entries (stamping
// their time from the clock) without hashing or chaining them, so a
// stage is cheap to fill concurrently with other stages. Stages are
// not verifiable; their purpose is to be merged into a real log with
// Adopt, which chains the buffered entries deterministically. The sim
// engine gives every parallel lane its own stage.
func NewStage(opts ...Option) *Log {
	l := New(opts...)
	l.staged = true
	return l
}

// Append records a new entry and returns it with its sequence number
// and chain hashes filled in. On a staging log (NewStage) the entry is
// buffered without hashes.
func (l *Log) Append(kind Kind, actor, detail string, context map[string]string) Entry {
	l.mu.Lock()
	defer l.mu.Unlock()

	now := time.Now
	if l.now != nil {
		now = l.now
	}
	return l.appendLocked(now(), kind, actor, detail, context)
}

// appendLocked records one entry stamped with an explicit time; the
// caller holds l.mu.
func (l *Log) appendLocked(at time.Time, kind Kind, actor, detail string, context map[string]string) Entry {
	e := Entry{
		Seq:    len(l.entries),
		Time:   at,
		Kind:   kind,
		Actor:  actor,
		Detail: detail,
	}
	if len(context) > 0 {
		e.Context = make(map[string]string, len(context))
		for k, v := range context {
			e.Context[k] = v
		}
	}
	if !l.staged {
		if len(l.entries) > 0 {
			e.PrevHash = l.entries[len(l.entries)-1].Hash
		}
		e.Hash = hashEntry(e)
	}
	l.entries = append(l.entries, e)
	return e
}

// Adopt drains a staging log into l: every buffered entry is
// re-appended in order, preserving its recorded time, and chained onto
// l's current tip. The stage is reset for reuse. Adopting a stage into
// the log it was buffered for yields the exact chain a serial run
// would have produced. It returns the number of entries adopted.
func (l *Log) Adopt(stage *Log) int {
	if stage == nil || stage == l {
		return 0
	}
	stage.mu.Lock()
	entries := stage.entries
	stage.entries = nil
	stage.mu.Unlock()

	l.mu.Lock()
	defer l.mu.Unlock()
	for _, e := range entries {
		l.appendLocked(e.Time, e.Kind, e.Actor, e.Detail, e.Context)
	}
	return len(entries)
}

// Len returns the number of entries.
func (l *Log) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.entries)
}

// Entries returns a copy of all entries.
func (l *Log) Entries() []Entry {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]Entry, len(l.entries))
	copy(out, l.entries)
	return out
}

// ByKind returns copies of all entries of the given kind, in order.
func (l *Log) ByKind(kind Kind) []Entry {
	l.mu.Lock()
	defer l.mu.Unlock()
	var out []Entry
	for _, e := range l.entries {
		if e.Kind == kind {
			out = append(out, e)
		}
	}
	return out
}

// Verify walks the chain and returns ErrChainBroken (wrapped with the
// failing sequence number) if any entry's hash or back-link is
// inconsistent.
func (l *Log) Verify() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return VerifyEntries(l.entries)
}

// VerifyFrom walks only the chain tail starting at index, checking
// that the first tail entry back-links to prevHash (the hash of entry
// index-1, or "" for index 0) and that every subsequent entry chains
// correctly. A caller that remembers (index, prevHash) from an earlier
// full Verify can therefore re-verify a long-running journal
// incrementally without rehashing the whole prefix: the prefix is
// pinned by prevHash, so any in-place edit before index still breaks
// the tail's back-link. Index must be within [0, Len()].
func (l *Log) VerifyFrom(index int, prevHash string) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if index < 0 || index > len(l.entries) {
		return fmt.Errorf("%w: verify-from index %d out of range [0,%d]", ErrChainBroken, index, len(l.entries))
	}
	prev := prevHash
	for i := index; i < len(l.entries); i++ {
		e := l.entries[i]
		if e.Seq != i {
			return fmt.Errorf("%w: entry %d has seq %d", ErrChainBroken, i, e.Seq)
		}
		if e.PrevHash != prev {
			return fmt.Errorf("%w: entry %d back-link mismatch", ErrChainBroken, i)
		}
		if hashEntry(e) != e.Hash {
			return fmt.Errorf("%w: entry %d content hash mismatch", ErrChainBroken, i)
		}
		prev = e.Hash
	}
	return nil
}

// MarshalJSON encodes the log as a JSON array of entries.
func (l *Log) MarshalJSON() ([]byte, error) {
	return json.Marshal(l.Entries())
}

// VerifyEntries validates a chain of entries exported from a Log (for
// example, after JSON round-tripping on another machine).
func VerifyEntries(entries []Entry) error {
	prev := ""
	for i, e := range entries {
		if e.Seq != i {
			return fmt.Errorf("%w: entry %d has seq %d", ErrChainBroken, i, e.Seq)
		}
		if e.PrevHash != prev {
			return fmt.Errorf("%w: entry %d back-link mismatch", ErrChainBroken, i)
		}
		if hashEntry(e) != e.Hash {
			return fmt.Errorf("%w: entry %d content hash mismatch", ErrChainBroken, i)
		}
		prev = e.Hash
	}
	return nil
}

// hashEntry computes the chain hash over every field except Hash
// itself. The context keys are serialized via canonical JSON (map keys
// sorted by encoding/json).
func hashEntry(e Entry) string {
	h := sha256.New()
	shadow := e
	shadow.Hash = ""
	b, err := json.Marshal(shadow)
	if err != nil {
		// Entry contains only marshalable types; this is unreachable
		// but kept defensive: an unhashable entry must never verify.
		return ""
	}
	h.Write(b)
	return hex.EncodeToString(h.Sum(nil))
}

// Seal computes an HMAC over the final hash of the chain, binding the
// whole log to a shared secret. A holder of the secret can detect
// wholesale replacement of the log (not just in-place edits).
func (l *Log) Seal(secret []byte) string {
	l.mu.Lock()
	defer l.mu.Unlock()
	mac := hmac.New(sha256.New, secret)
	if len(l.entries) > 0 {
		mac.Write([]byte(l.entries[len(l.entries)-1].Hash))
	}
	return hex.EncodeToString(mac.Sum(nil))
}

// CheckSeal reports whether the seal matches the current chain tip
// under the secret.
func (l *Log) CheckSeal(secret []byte, seal string) bool {
	want := l.Seal(secret)
	return hmac.Equal([]byte(want), []byte(seal))
}
