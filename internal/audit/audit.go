// Package audit provides an append-only, hash-chained audit log.
//
// Several of the paper's prevention mechanisms presuppose trustworthy
// records: break-glass rules "would require support for audits to verify
// that devices did not abuse the break-glass rules" (Section VI.B), and
// deactivation decisions must themselves be reviewable. Each entry binds
// its content to the hash of its predecessor, so any in-place
// modification, deletion, or reordering is detectable by Verify.
package audit

import (
	"crypto/hmac"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"
)

// ErrChainBroken is returned by Verify when the hash chain does not
// validate.
var ErrChainBroken = errors.New("audit: hash chain broken")

// Kind labels the category of an audit entry.
type Kind string

// Well-known entry kinds used by the guard layer.
const (
	KindAction     Kind = "action"
	KindDenial     Kind = "denial"
	KindBreakGlass Kind = "break-glass"
	KindDeactivate Kind = "deactivate"
	KindAdmission  Kind = "admission"
	KindOversight  Kind = "oversight"
	KindTamper     Kind = "tamper"
	KindCheckpoint Kind = "checkpoint"
	KindBundle     Kind = "bundle"
	KindNote       Kind = "note"
)

// Entry is one immutable audit record.
type Entry struct {
	// Seq is the zero-based position of the entry in the log.
	Seq int `json:"seq"`
	// Time is the (virtual or wall) time the entry was recorded.
	Time time.Time `json:"time"`
	// Kind categorizes the record.
	Kind Kind `json:"kind"`
	// Actor is the device or collective that caused the record.
	Actor string `json:"actor"`
	// Detail is a human-readable description.
	Detail string `json:"detail"`
	// Context carries structured key/value context (e.g. the state at
	// the time of a break-glass use).
	Context map[string]string `json:"context,omitempty"`
	// PrevHash is the hex hash of the previous entry ("" for the
	// first).
	PrevHash string `json:"prevHash"`
	// Hash is the hex hash of this entry's content including PrevHash.
	Hash string `json:"hash"`
}

// Log is a thread-safe, append-only hash-chained audit log. The zero
// value is ready to use with wall-clock time; use New to inject a
// clock (e.g. a simulation clock).
type Log struct {
	mu      sync.Mutex
	now     func() time.Time
	staged  bool
	entries []Entry
	scratch hasher // hash scratch reused across appends (guarded by mu)
}

// Journal routes audit appends: given the log an append would normally
// target, it returns the log that should receive it instead — e.g. a
// per-lane staging buffer during parallel simulation (sim.Lane
// implements this). Implementations must return nil for a nil base, so
// "auditing disabled" survives routing.
type Journal interface {
	Route(base *Log) *Log
}

// Resolve applies an optional Journal to a base log: a nil journal (or
// nil base) passes the base through unchanged. Append sites that
// support deterministic parallel execution write to Resolve(j, log)
// instead of log.
func Resolve(j Journal, base *Log) *Log {
	if j == nil || base == nil {
		return base
	}
	return j.Route(base)
}

// Option configures a Log.
type Option interface {
	apply(*Log)
}

type clockOption struct{ now func() time.Time }

func (o clockOption) apply(l *Log) { l.now = o.now }

// WithClock injects the time source used to stamp entries.
func WithClock(now func() time.Time) Option {
	return clockOption{now: now}
}

// New returns an empty log.
func New(opts ...Option) *Log {
	l := &Log{}
	for _, o := range opts {
		o.apply(l)
	}
	return l
}

// NewStage returns a staging log: Append buffers entries (stamping
// their time from the clock) without hashing or chaining them, so a
// stage is cheap to fill concurrently with other stages. Stages are
// not verifiable; their purpose is to be merged into a real log with
// Adopt, which chains the buffered entries deterministically. The sim
// engine gives every parallel lane its own stage.
func NewStage(opts ...Option) *Log {
	l := New(opts...)
	l.staged = true
	return l
}

// Append records a new entry and returns it with its sequence number
// and chain hashes filled in. On a staging log (NewStage) the entry is
// buffered without hashes.
func (l *Log) Append(kind Kind, actor, detail string, context map[string]string) Entry {
	return l.append(kind, actor, detail, context, true)
}

// AppendOwned is Append with ownership transfer: the log stores the
// context map directly instead of copying it. The caller must not
// mutate the map afterwards. Hot append sites (guard denials, action
// records) build a fresh map per entry anyway, so transferring it
// halves their allocation cost.
func (l *Log) AppendOwned(kind Kind, actor, detail string, context map[string]string) Entry {
	return l.append(kind, actor, detail, context, false)
}

func (l *Log) append(kind Kind, actor, detail string, context map[string]string, copyCtx bool) Entry {
	l.mu.Lock()
	defer l.mu.Unlock()

	now := time.Now
	if l.now != nil {
		now = l.now
	}
	return l.appendLocked(now(), kind, actor, detail, context, copyCtx)
}

// appendLocked records one entry stamped with an explicit time; the
// caller holds l.mu.
func (l *Log) appendLocked(at time.Time, kind Kind, actor, detail string, context map[string]string, copyCtx bool) Entry {
	e := Entry{
		Seq:    len(l.entries),
		Time:   at,
		Kind:   kind,
		Actor:  actor,
		Detail: detail,
	}
	if len(context) > 0 {
		if copyCtx {
			e.Context = make(map[string]string, len(context))
			for k, v := range context {
				e.Context[k] = v
			}
		} else {
			e.Context = context
		}
	}
	if !l.staged {
		if len(l.entries) > 0 {
			e.PrevHash = l.entries[len(l.entries)-1].Hash
		}
		e.Hash = l.scratch.hash(&e)
	}
	l.entries = append(l.entries, e)
	return e
}

// Adopt drains a staging log into l: every buffered entry is moved
// over in order, preserving its recorded time, and chained onto l's
// current tip. The stage is reset for reuse, retaining its buffer
// capacity. Adopting a stage into the log it was buffered for yields
// the exact chain a serial run would have produced. It returns the
// number of entries adopted.
func (l *Log) Adopt(stage *Log) int {
	if stage == nil || stage == l {
		return 0
	}
	stage.mu.Lock()
	entries := stage.entries
	stage.entries = entries[:0]
	stage.mu.Unlock()

	l.mu.Lock()
	defer l.mu.Unlock()
	for i := range entries {
		e := &entries[i]
		e.Seq = len(l.entries)
		if len(l.entries) > 0 {
			e.PrevHash = l.entries[len(l.entries)-1].Hash
		} else {
			e.PrevHash = ""
		}
		e.Hash = l.scratch.hash(e)
		l.entries = append(l.entries, *e)
		// Drop the moved entry's references so the reusable stage
		// buffer does not pin maps/strings now owned by l.
		*e = Entry{}
	}
	return len(entries)
}

// Len returns the number of entries.
func (l *Log) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.entries)
}

// Entries returns a copy of all entries.
func (l *Log) Entries() []Entry {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]Entry, len(l.entries))
	copy(out, l.entries)
	return out
}

// EntriesSince returns copies of the entries from index on, together
// with the hash the tail chains onto (the hash of entry from-1, or ""
// when from is 0). The pair is exactly what a streaming reader needs
// to hand VerifyTail: the prefix before from is pinned by the
// returned hash, so the tail verifies without rehashing it. A from
// beyond the log's current length returns (nil, tip-hash): streaming
// clients poll with their next expected index and get the anchor for
// entries still to come. Negative from is clamped to 0.
func (l *Log) EntriesSince(from int) ([]Entry, string) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if from < 0 {
		from = 0
	}
	if from > len(l.entries) {
		from = len(l.entries)
	}
	prev := ""
	if from > 0 {
		prev = l.entries[from-1].Hash
	}
	if from == len(l.entries) {
		return nil, prev
	}
	out := make([]Entry, len(l.entries)-from)
	copy(out, l.entries[from:])
	return out, prev
}

// ByKind returns copies of all entries of the given kind, in order.
func (l *Log) ByKind(kind Kind) []Entry {
	l.mu.Lock()
	defer l.mu.Unlock()
	var out []Entry
	for _, e := range l.entries {
		if e.Kind == kind {
			out = append(out, e)
		}
	}
	return out
}

// CountKind returns the number of entries of the given kind without
// copying them — use instead of len(ByKind(k)) on large journals.
func (l *Log) CountKind(kind Kind) int {
	l.mu.Lock()
	defer l.mu.Unlock()
	n := 0
	for i := range l.entries {
		if l.entries[i].Kind == kind {
			n++
		}
	}
	return n
}

// Verify walks the chain and returns ErrChainBroken (wrapped with the
// failing sequence number) if any entry's hash or back-link is
// inconsistent.
func (l *Log) Verify() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return VerifyEntries(l.entries)
}

// VerifyFrom walks only the chain tail starting at index, checking
// that the first tail entry back-links to prevHash (the hash of entry
// index-1, or "" for index 0) and that every subsequent entry chains
// correctly. A caller that remembers (index, prevHash) from an earlier
// full Verify can therefore re-verify a long-running journal
// incrementally without rehashing the whole prefix: the prefix is
// pinned by prevHash, so any in-place edit before index still breaks
// the tail's back-link. Index must be within [0, Len()].
func (l *Log) VerifyFrom(index int, prevHash string) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if index < 0 || index > len(l.entries) {
		return fmt.Errorf("%w: verify-from index %d out of range [0,%d]", ErrChainBroken, index, len(l.entries))
	}
	prev := prevHash
	h := hasherPool.Get().(*hasher)
	defer hasherPool.Put(h)
	for i := index; i < len(l.entries); i++ {
		e := &l.entries[i]
		if e.Seq != i {
			return fmt.Errorf("%w: entry %d has seq %d", ErrChainBroken, i, e.Seq)
		}
		if e.PrevHash != prev {
			return fmt.Errorf("%w: entry %d back-link mismatch", ErrChainBroken, i)
		}
		if !h.matches(e) {
			return fmt.Errorf("%w: entry %d content hash mismatch", ErrChainBroken, i)
		}
		prev = e.Hash
	}
	return nil
}

// MarshalJSON encodes the log as a JSON array of entries.
func (l *Log) MarshalJSON() ([]byte, error) {
	return json.Marshal(l.Entries())
}

// VerifyEntries validates a chain of entries exported from a Log (for
// example, after JSON round-tripping on another machine).
func VerifyEntries(entries []Entry) error {
	return VerifyTail(0, "", entries)
}

// VerifyTail validates an exported tail of a chain: entries must be
// the records from index from on, and prevHash the hash of the entry
// before the tail ("" when from is 0). It is the exported-slice form
// of Log.VerifyFrom — an audit-stream consumer that received
// (from, prevHash, entries) over the wire can verify every streamed
// prefix incrementally without ever holding the full journal.
func VerifyTail(from int, prevHash string, entries []Entry) error {
	if from < 0 {
		return fmt.Errorf("%w: negative tail index %d", ErrChainBroken, from)
	}
	prev := prevHash
	h := hasherPool.Get().(*hasher)
	defer hasherPool.Put(h)
	for i := range entries {
		e := &entries[i]
		if e.Seq != from+i {
			return fmt.Errorf("%w: entry %d has seq %d", ErrChainBroken, from+i, e.Seq)
		}
		if e.PrevHash != prev {
			return fmt.Errorf("%w: entry %d back-link mismatch", ErrChainBroken, from+i)
		}
		if !h.matches(e) {
			return fmt.Errorf("%w: entry %d content hash mismatch", ErrChainBroken, from+i)
		}
		prev = e.Hash
	}
	return nil
}

// hasher computes entry chain hashes over a reusable buffer. The
// canonical encoding is length-prefixed (every string is u32 length +
// bytes, integers are fixed-width big-endian, context keys sorted), so
// it is injective over the hashed fields and orders of magnitude
// cheaper than the reflective JSON marshal it replaces. Time is hashed
// as UnixNano, which survives JSON round-trips (encoding drops only
// the monotonic reading), so exported logs still verify elsewhere.
type hasher struct {
	buf  []byte
	keys []string
}

func (h *hasher) str(s string) {
	var n [4]byte
	binary.BigEndian.PutUint32(n[:], uint32(len(s)))
	h.buf = append(h.buf, n[:]...)
	h.buf = append(h.buf, s...)
}

func (h *hasher) u64(v uint64) {
	var n [8]byte
	binary.BigEndian.PutUint64(n[:], v)
	h.buf = append(h.buf, n[:]...)
}

// hexHashLen is the length of a rendered chain hash (hex SHA-256).
const hexHashLen = 2 * sha256.Size

// hash computes the chain hash over every field of e except Hash
// itself — one string allocation, nothing else.
func (h *hasher) hash(e *Entry) string {
	var out [hexHashLen]byte
	h.encode(e, &out)
	return string(out[:])
}

// matches reports whether e.Hash is the chain hash of e's content.
// The rendered hash lives on the stack, so verification walks are
// allocation-free.
func (h *hasher) matches(e *Entry) bool {
	var out [hexHashLen]byte
	h.encode(e, &out)
	return string(out[:]) == e.Hash
}

func (h *hasher) encode(e *Entry, out *[hexHashLen]byte) {
	h.buf = h.buf[:0]
	h.u64(uint64(e.Seq))
	h.u64(uint64(e.Time.UnixNano()))
	h.str(string(e.Kind))
	h.str(e.Actor)
	h.str(e.Detail)
	h.u64(uint64(len(e.Context)))
	if len(e.Context) > 0 {
		h.keys = h.keys[:0]
		for k := range e.Context {
			h.keys = append(h.keys, k)
		}
		sort.Strings(h.keys)
		for _, k := range h.keys {
			h.str(k)
			h.str(e.Context[k])
		}
	}
	h.str(e.PrevHash)
	sum := sha256.Sum256(h.buf)
	hex.Encode(out[:], sum[:])
}

var hasherPool = sync.Pool{New: func() any { return new(hasher) }}

// Seal computes an HMAC over the final hash of the chain, binding the
// whole log to a shared secret. A holder of the secret can detect
// wholesale replacement of the log (not just in-place edits).
func (l *Log) Seal(secret []byte) string {
	l.mu.Lock()
	defer l.mu.Unlock()
	mac := hmac.New(sha256.New, secret)
	if len(l.entries) > 0 {
		mac.Write([]byte(l.entries[len(l.entries)-1].Hash))
	}
	return hex.EncodeToString(mac.Sum(nil))
}

// CheckSeal reports whether the seal matches the current chain tip
// under the secret.
func (l *Log) CheckSeal(secret []byte, seal string) bool {
	want := l.Seal(secret)
	return hmac.Equal([]byte(want), []byte(seal))
}

// CtxCache caches the most recent context map built by one hot append
// site. MAPE loops append entries with the same few label values tick
// after tick; when the values repeat, the cached immutable map is
// handed to AppendOwned again, so steady-state appends allocate no
// context at all. Entries never mutate their context after append,
// which is what makes sharing one map across many entries safe.
//
// A cache instance must be used with one fixed key set per arity (the
// match test compares values under the given keys, so mixing key sets
// of equal size could alias).
type CtxCache struct {
	mu   sync.Mutex
	last map[string]string
}

// Get2 returns a map equal to {k1: v1, k2: v2}, reusing the cached
// map when it already holds exactly those pairs. The returned map is
// shared and must be treated as immutable.
func (c *CtxCache) Get2(k1, v1, k2, v2 string) map[string]string {
	c.mu.Lock()
	defer c.mu.Unlock()
	if m := c.last; len(m) == 2 && m[k1] == v1 && m[k2] == v2 {
		return m
	}
	m := map[string]string{k1: v1, k2: v2}
	c.last = m
	return m
}

// Get3 is Get2 for three pairs.
func (c *CtxCache) Get3(k1, v1, k2, v2, k3, v3 string) map[string]string {
	c.mu.Lock()
	defer c.mu.Unlock()
	if m := c.last; len(m) == 3 && m[k1] == v1 && m[k2] == v2 && m[k3] == v3 {
		return m
	}
	m := map[string]string{k1: v1, k2: v2, k3: v3}
	c.last = m
	return m
}

// Get4 is Get2 for four pairs.
func (c *CtxCache) Get4(k1, v1, k2, v2, k3, v3, k4, v4 string) map[string]string {
	c.mu.Lock()
	defer c.mu.Unlock()
	if m := c.last; len(m) == 4 && m[k1] == v1 && m[k2] == v2 && m[k3] == v3 && m[k4] == v4 {
		return m
	}
	m := map[string]string{k1: v1, k2: v2, k3: v3, k4: v4}
	c.last = m
	return m
}
