package admission

import (
	"testing"
	"time"
)

// benchController builds a controller on a cheap monotonic virtual
// clock so benchmarks measure admission logic, not time syscalls.
func benchController(b *testing.B, cfg Config) (*Controller, *time.Time) {
	b.Helper()
	now := time.Unix(0, 0)
	cfg.Now = func() time.Time { return now }
	ctrl, err := New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	return ctrl, &now
}

// BenchmarkAdmissionAdmit measures the uncontended enqueue path with
// the queue never filling (drained every iteration).
func BenchmarkAdmissionAdmit(b *testing.B) {
	ctrl, _ := benchController(b, Config{QueueCapacity: 1024, DrainBatch: 512})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := ctrl.Admit("d", ClassGuard, i); err != nil {
			b.Fatal(err)
		}
		if i%512 == 511 {
			b.StopTimer()
			for len(ctrl.Drain("d")) > 0 {
			}
			b.StartTimer()
		}
	}
}

// BenchmarkAdmissionAdmitShed measures the shed path: the queue is
// full, so every offer is rejected with a typed error.
func BenchmarkAdmissionAdmitShed(b *testing.B) {
	ctrl, _ := benchController(b, Config{QueueCapacity: 4})
	for i := 0; i < 4; i++ {
		if err := ctrl.Admit("d", ClassGuard, i); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := ctrl.Admit("d", ClassGuard, i); err == nil {
			b.Fatal("full queue admitted")
		}
	}
}

// BenchmarkAdmissionAllow measures the gate-only path used by the
// dispatcher (no queueing, immediate accounting).
func BenchmarkAdmissionAllow(b *testing.B) {
	ctrl, _ := benchController(b, Config{})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := ctrl.Allow("d", ClassHuman); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAdmissionRateLimited measures the token-bucket rejection
// path: rate 1/s with the virtual clock frozen, so after the first
// token every call sheds.
func BenchmarkAdmissionRateLimited(b *testing.B) {
	ctrl, _ := benchController(b, Config{Rate: 1, Burst: 1})
	if err := ctrl.Allow("d", ClassHuman); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := ctrl.Allow("d", ClassHuman); err == nil {
			b.Fatal("exhausted bucket admitted")
		}
	}
}

// BenchmarkAdmissionDrain measures priority-ordered batch draining
// with all three classes resident.
func BenchmarkAdmissionDrain(b *testing.B) {
	ctrl, _ := benchController(b, Config{QueueCapacity: 4096, DrainBatch: 32})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		for k := 0; k < 96; k++ {
			if err := ctrl.Admit("d", Class(k%3), k); err != nil {
				b.Fatal(err)
			}
		}
		b.StartTimer()
		for drained := 0; drained < 96; {
			batch := ctrl.Drain("d")
			if len(batch) == 0 {
				b.Fatal("queue ran dry early")
			}
			drained += len(batch)
		}
	}
}
