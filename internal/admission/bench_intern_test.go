package admission

import (
	"testing"

	"repro/internal/intern"
)

// The bus admission gate classifies every message by topic. These
// benchmarks compare the original string-switch classification with
// the interned-ID path the bus now uses
// (ClassifyTopicID(intern.Lookup(topic))): well-known topics resolve
// through the lock-free preloaded intern level, so the hot path is a
// map read plus an integer switch instead of repeated string
// comparisons — and topic IDs carried on pre-interned messages skip
// even the lookup.

var benchTopics = []string{
	"command", "action", "guard", "oversight", "bundle",
	"telemetry", "gossip", "unknown-topic",
}

var sinkClass Class

// BenchmarkClassifyTopicString is the baseline: string switch per
// message.
func BenchmarkClassifyTopicString(b *testing.B) {
	b.ReportAllocs()
	var c Class
	for i := 0; b.Loop(); i++ {
		c = ClassifyTopic(benchTopics[i%len(benchTopics)])
	}
	sinkClass = c
}

// BenchmarkClassifyTopicLookupID measures the bus's actual sequence:
// intern lookup of the topic string, then the integer-switch
// classification.
func BenchmarkClassifyTopicLookupID(b *testing.B) {
	b.ReportAllocs()
	var c Class
	for i := 0; b.Loop(); i++ {
		c = ClassifyTopicID(intern.Lookup(benchTopics[i%len(benchTopics)]))
	}
	sinkClass = c
}

// BenchmarkClassifyTopicID measures classification alone, as for a
// message whose topic ID was interned once at publish time: an
// integer switch, no string comparison at all.
func BenchmarkClassifyTopicID(b *testing.B) {
	ids := make([]intern.ID, len(benchTopics))
	for i, t := range benchTopics {
		ids[i] = intern.Of(t)
	}
	b.ReportAllocs()
	b.ResetTimer()
	var c Class
	for i := 0; b.Loop(); i++ {
		c = ClassifyTopicID(ids[i%len(ids)])
	}
	sinkClass = c
}
