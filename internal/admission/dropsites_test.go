package admission

import (
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// dropSitePatterns match message-delivery calls whose error or result
// is discarded — the "fire and hope" shape this package exists to
// eliminate. Every Send must be handled, counted, or shed with a
// typed cause; every Deliver result must be observed.
var dropSitePatterns = []*regexp.Regexp{
	regexp.MustCompile(`_ = [\w.]+\.Send\(`),
	regexp.MustCompile(`_, _ = [\w.]*\.Deliver`),
	// A discarded bundle.Encode error silently drops the push it was
	// encoding (the PR10 distributor bug): wire encoding failures must
	// be counted and audited, never ignored.
	regexp.MustCompile(`, _ := [\w.]*bundle\.Encode\(`),
	regexp.MustCompile(`, _ = [\w.]*bundle\.Encode\(`),
	regexp.MustCompile(`, _ := encodeBundle\(`),
	regexp.MustCompile(`, _ = encodeBundle\(`),
}

// TestNoUnaccountedDropSites audits the production source for
// discarded delivery outcomes. A deliberate discard must either go
// through an accounting wrapper (e.g. the bus's admission path, which
// counts the duplicate's shed inside the controller) or be moved
// behind an error path that counts the drop.
func TestNoUnaccountedDropSites(t *testing.T) {
	roots := []string{
		filepath.Join("..", "..", "internal"),
		filepath.Join("..", "..", "cmd"),
	}
	// The one sanctioned discard: the bus's duplicate admission in
	// sendAdmitted is accounted inside the controller (offered/shed),
	// and deliberately stays off the bus's own books.
	allowed := map[string]bool{
		"_ = intake.Admit(": true,
	}
	var violations []string
	for _, root := range roots {
		err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if d.IsDir() || !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
				return nil
			}
			data, err := os.ReadFile(path)
			if err != nil {
				return err
			}
			for i, line := range strings.Split(string(data), "\n") {
				trimmed := strings.TrimSpace(line)
				for _, re := range dropSitePatterns {
					m := re.FindString(trimmed)
					if m == "" || allowed[m] {
						continue
					}
					violations = append(violations,
						filepath.Clean(path)+":"+itoa(i+1)+": "+trimmed)
				}
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	if len(violations) > 0 {
		t.Fatalf("unaccounted message-drop sites found:\n  %s",
			strings.Join(violations, "\n  "))
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [20]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}
