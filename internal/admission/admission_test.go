package admission

import (
	"errors"
	"math/rand"
	"testing"
	"time"

	"repro/internal/telemetry"
)

// manualClock is a hand-advanced virtual clock for deterministic token
// refill.
type manualClock struct{ now time.Time }

func (c *manualClock) Now() time.Time          { return c.now }
func (c *manualClock) Advance(d time.Duration) { c.now = c.now.Add(d) }
func newManualClock() *manualClock             { return &manualClock{now: time.Unix(0, 0)} }
func mustNew(t *testing.T, cfg Config) *Controller {
	t.Helper()
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestClassifyTopic(t *testing.T) {
	cases := map[string]Class{
		"command":   ClassHuman,
		"action":    ClassGuard,
		"guard":     ClassGuard,
		"oversight": ClassGuard,
		"gossip":    ClassBackground,
		"telemetry": ClassBackground,
		"":          ClassBackground,
		// Policy revision pushes are control-plane traffic; the ack and
		// pull return paths survive on anti-entropy repair, so only the
		// exact "bundle" topic outranks background.
		"bundle":      ClassGuard,
		"bundle_ack":  ClassBackground,
		"bundle_pull": ClassBackground,
	}
	for topic, want := range cases {
		if got := ClassifyTopic(topic); got != want {
			t.Errorf("ClassifyTopic(%q) = %v, want %v", topic, got, want)
		}
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{QueueCapacity: -1}); err == nil {
		t.Fatal("negative queue capacity accepted")
	}
	if _, err := New(Config{Rate: -1}); err == nil {
		t.Fatal("negative rate accepted")
	}
}

func TestPriorityDrainOrder(t *testing.T) {
	c := mustNew(t, Config{QueueCapacity: 10, DrainBatch: 10})
	for i, cl := range []Class{ClassBackground, ClassGuard, ClassHuman, ClassBackground, ClassHuman} {
		if err := c.Admit("n", cl, i); err != nil {
			t.Fatal(err)
		}
	}
	items := c.Drain("n")
	got := make([]any, len(items))
	for i, it := range items {
		got[i] = it.Payload
	}
	// Human FIFO (2, 4), then guard (1), then background FIFO (0, 3).
	want := []any{2, 4, 1, 0, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("drain order = %v, want %v", got, want)
		}
	}
}

func TestQueueFullTypedError(t *testing.T) {
	c := mustNew(t, Config{QueueCapacity: 2})
	for i := 0; i < 2; i++ {
		if err := c.Admit("n", ClassBackground, i); err != nil {
			t.Fatal(err)
		}
	}
	err := c.Admit("n", ClassBackground, 99)
	if !errors.Is(err, ErrQueueFull) {
		t.Fatalf("want ErrQueueFull, got %v", err)
	}
	if CauseOf(err) != CauseQueueFull {
		t.Fatalf("CauseOf = %q", CauseOf(err))
	}
	if err := c.CheckConservation(); err != nil {
		t.Fatal(err)
	}
}

func TestHigherPriorityEvictsNewestLowest(t *testing.T) {
	var evictedItems []Item
	c := mustNew(t, Config{QueueCapacity: 2, OnEvict: func(r string, it Item) {
		if r != "n" {
			t.Errorf("eviction recipient %q", r)
		}
		evictedItems = append(evictedItems, it)
	}})
	if err := c.Admit("n", ClassBackground, "old-bg"); err != nil {
		t.Fatal(err)
	}
	if err := c.Admit("n", ClassBackground, "new-bg"); err != nil {
		t.Fatal(err)
	}
	// A human arrival at a full queue displaces the newest background
	// occupant; a same-priority arrival is rejected instead.
	if err := c.Admit("n", ClassHuman, "cmd"); err != nil {
		t.Fatalf("human arrival should evict, got %v", err)
	}
	if len(evictedItems) != 1 || evictedItems[0].Payload != "new-bg" {
		t.Fatalf("evicted = %+v, want newest background", evictedItems)
	}
	if err := c.Admit("n", ClassHuman, "cmd2"); err != nil {
		t.Fatalf("second human should evict remaining background, got %v", err)
	}
	if err := c.Admit("n", ClassHuman, "cmd3"); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("human cannot evict human, got %v", err)
	}
	counts := c.Counts()
	if counts.Evicted[ClassBackground] != 2 {
		t.Fatalf("Evicted[background] = %d, want 2", counts.Evicted[ClassBackground])
	}
	if counts.ShedQueueFull[ClassBackground] != 2 || counts.ShedQueueFull[ClassHuman] != 1 {
		t.Fatalf("ShedQueueFull = %+v", counts.ShedQueueFull)
	}
	items := c.Drain("n")
	if len(items) != 2 || items[0].Payload != "cmd" || items[1].Payload != "cmd2" {
		t.Fatalf("drained %+v", items)
	}
	if err := c.CheckConservation(); err != nil {
		t.Fatal(err)
	}
}

func TestRateLimitOnVirtualClock(t *testing.T) {
	clock := newManualClock()
	c := mustNew(t, Config{Rate: 1, Burst: 1, Now: clock.Now})
	if err := c.Admit("n", ClassHuman, 0); err != nil {
		t.Fatal(err)
	}
	err := c.Admit("n", ClassHuman, 1)
	if !errors.Is(err, ErrRateLimited) {
		t.Fatalf("want ErrRateLimited, got %v", err)
	}
	if CauseOf(err) != CauseRateLimited {
		t.Fatalf("CauseOf = %q", CauseOf(err))
	}
	clock.Advance(time.Second)
	if err := c.Admit("n", ClassHuman, 2); err != nil {
		t.Fatalf("token should have refilled: %v", err)
	}
	// Burst caps accumulation: a long idle gap still yields one token.
	clock.Advance(time.Hour)
	if err := c.Admit("n", ClassHuman, 3); err != nil {
		t.Fatal(err)
	}
	if err := c.Admit("n", ClassHuman, 4); !errors.Is(err, ErrRateLimited) {
		t.Fatalf("burst should cap at 1, got %v", err)
	}
	if err := c.CheckConservation(); err != nil {
		t.Fatal(err)
	}
}

func TestAllowGateOnlyAccounting(t *testing.T) {
	clock := newManualClock()
	c := mustNew(t, Config{Rate: 1, Burst: 1, Now: clock.Now})
	if err := c.Allow("n", ClassHuman); err != nil {
		t.Fatal(err)
	}
	if err := c.Allow("n", ClassHuman); !errors.Is(err, ErrRateLimited) {
		t.Fatalf("want ErrRateLimited, got %v", err)
	}
	counts := c.Counts()
	if counts.Admitted[ClassHuman] != 1 || counts.Delivered[ClassHuman] != 1 {
		t.Fatalf("allow accounting: %+v", counts)
	}
	if c.TotalDepth() != 0 {
		t.Fatal("Allow must not enqueue")
	}
	if err := c.CheckConservation(); err != nil {
		t.Fatal(err)
	}
}

func TestDrainBatchBound(t *testing.T) {
	c := mustNew(t, Config{QueueCapacity: 10, DrainBatch: 2})
	for i := 0; i < 5; i++ {
		if err := c.Admit("n", ClassBackground, i); err != nil {
			t.Fatal(err)
		}
	}
	for _, want := range []int{2, 2, 1, 0} {
		if got := len(c.Drain("n")); got != want {
			t.Fatalf("Drain returned %d items, want %d", got, want)
		}
	}
}

func TestBeginFinishDrain(t *testing.T) {
	c := mustNew(t, Config{QueueCapacity: 10, DrainBatch: 1})
	if err := c.Admit("n", ClassHuman, 0); err != nil {
		t.Fatal(err)
	}
	if err := c.Admit("n", ClassHuman, 1); err != nil {
		t.Fatal(err)
	}
	if !c.BeginDrain("n") {
		t.Fatal("first BeginDrain should win")
	}
	if c.BeginDrain("n") {
		t.Fatal("second BeginDrain should report a pass already pending")
	}
	c.Drain("n")
	if !c.FinishDrain("n") {
		t.Fatal("FinishDrain should demand another pass while items remain")
	}
	c.Drain("n")
	if c.FinishDrain("n") {
		t.Fatal("FinishDrain should clear once empty")
	}
	if !c.BeginDrain("n") {
		t.Fatal("BeginDrain should win again after the mark cleared")
	}
}

func TestMetricsEmitted(t *testing.T) {
	reg := telemetry.NewRegistry()
	clock := newManualClock()
	c := mustNew(t, Config{QueueCapacity: 1, Rate: 10, Burst: 2, Now: clock.Now, Metrics: reg})
	if err := c.Admit("n", ClassHuman, 0); err != nil {
		t.Fatal(err)
	}
	if err := c.Admit("n", ClassBackground, 1); !errors.Is(err, ErrQueueFull) {
		t.Fatal(err)
	}
	c.Drain("n")
	if got := reg.CounterTotal("admission.admitted"); got != 1 {
		t.Fatalf("admission.admitted = %d", got)
	}
	if got := reg.CounterTotal("admission.delivered"); got != 1 {
		t.Fatalf("admission.delivered = %d", got)
	}
	if got := reg.CounterTotal("admission.shed"); got != 1 {
		t.Fatalf("admission.shed = %d", got)
	}
	if got := reg.GaugeValue("admission.queue_depth"); got != 0 {
		t.Fatalf("admission.queue_depth = %g after drain", got)
	}
}

// TestConservationUnderRandomLoad is the property test: any
// interleaving of admissions (all classes, several recipients),
// drains, gate-only allows and evictions keeps the controller's books
// in exact balance.
func TestConservationUnderRandomLoad(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	clock := newManualClock()
	c := mustNew(t, Config{
		QueueCapacity: 4, Rate: 100, Burst: 5, Now: clock.Now, DrainBatch: 3,
	})
	recipients := []string{"a", "b", "c"}
	classes := Classes()
	delivered := 0
	for op := 0; op < 5000; op++ {
		clock.Advance(time.Duration(rng.Intn(20)) * time.Millisecond)
		r := recipients[rng.Intn(len(recipients))]
		switch rng.Intn(4) {
		case 0, 1:
			_ = c.Admit(r, classes[rng.Intn(len(classes))], op)
		case 2:
			delivered += len(c.Drain(r))
		case 3:
			_ = c.Allow(r, classes[rng.Intn(len(classes))])
		}
		if op%500 == 0 {
			if err := c.CheckConservation(); err != nil {
				t.Fatalf("op %d: %v", op, err)
			}
		}
	}
	if err := c.CheckConservation(); err != nil {
		t.Fatal(err)
	}
	counts := c.Counts()
	if Total(counts.Offered) == 0 || delivered == 0 {
		t.Fatal("degenerate run: nothing offered or drained")
	}
	// Priority under pressure: human traffic sheds no more often than
	// background (the symmetric load makes strict inequality likely but
	// eviction guarantees only the ordering).
	shedBy := func(cl Class) int64 {
		return counts.ShedQueueFull[cl] + counts.ShedRateLimited[cl]
	}
	if shedBy(ClassHuman) > shedBy(ClassBackground) {
		t.Fatalf("priority inversion: human shed %d > background shed %d",
			shedBy(ClassHuman), shedBy(ClassBackground))
	}
}
