// Package admission is the command plane's bounded front door: every
// message aimed at a recipient is either admitted into that
// recipient's bounded intake queue, shed with a typed cause
// (ErrQueueFull, ErrRateLimited), or — for gate-only callers —
// reserved against the same budget. Nothing is ever lost silently:
// the controller keeps exact per-class admitted/delivered/shed
// accounting, so the conservation invariant
//
//	admitted == delivered + queued
//	offered  == admitted + shed{cause}
//
// holds at every instant, which is what the paper's tamper-evident
// audit argument (Section VI) demands of a guarded collective and
// what an execution control plane for autonomous action paths
// requires: every request admitted, bounded, and attributable.
//
// Intake is prioritized: human commands outrank guard/collaboration
// traffic, which outranks gossip and other background chatter. When a
// queue is full, an arriving higher-priority message evicts the
// newest lowest-priority occupant (the eviction is shed-with-cause,
// never silent); an arriving message that is itself lowest priority
// is rejected. Token buckets refill on a caller-supplied clock —
// the simulation's virtual clock in tests and experiments — so
// admission decisions are deterministic and reproducible.
package admission

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/intern"
	"repro/internal/telemetry"
)

// Class is a message priority class. Lower values are higher
// priority.
type Class int

// Priority classes, highest first.
const (
	// ClassHuman is direct human command intake — never outranked.
	ClassHuman Class = iota
	// ClassGuard is guard verdict and device-collaboration traffic.
	ClassGuard
	// ClassBackground is gossip, anti-entropy and other chatter.
	ClassBackground

	numClasses = 3
)

// String returns the class's canonical label (used on metrics).
func (c Class) String() string {
	switch c {
	case ClassHuman:
		return "human"
	case ClassGuard:
		return "guard"
	case ClassBackground:
		return "background"
	}
	return fmt.Sprintf("class(%d)", int(c))
}

// Classes lists every priority class, highest priority first.
func Classes() []Class {
	return []Class{ClassHuman, ClassGuard, ClassBackground}
}

// ClassifyTopic maps a bus topic onto its priority class: "command"
// is human intake; "action"/"guard"/"oversight" are collaboration
// traffic, as is "bundle" — a policy revision push is the oversight
// collective reasserting control, so it must not starve behind
// background chatter; everything else (gossip, bundle acks/pulls,
// telemetry chatter) is background — repair re-pushes make lost acks
// survivable, so the return path need not outrank guard traffic.
func ClassifyTopic(topic string) Class {
	switch topic {
	case "command":
		return ClassHuman
	case "action", "guard", "oversight", "bundle":
		return ClassGuard
	}
	return ClassBackground
}

// Interned IDs of the classified topics, resolved once against the
// default table's preloaded (lock-free) prefix.
var (
	topicCommand   = intern.Of("command")
	topicAction    = intern.Of("action")
	topicGuard     = intern.Of("guard")
	topicOversight = intern.Of("oversight")
	topicBundle    = intern.Of("bundle")
)

// ClassifyTopicID is ClassifyTopic for a caller already holding an
// interned topic ID: an integer switch, no string comparison. Use it
// only when the ID is in hand — BenchmarkClassifyTopic* shows that an
// intern lookup per classification costs more than the string switch
// it replaces, which is why the bus classifies strings directly.
// intern.None (an unknown topic) is background, matching
// ClassifyTopic's default.
func ClassifyTopicID(topic intern.ID) Class {
	switch topic {
	case topicCommand:
		return ClassHuman
	case topicAction, topicGuard, topicOversight, topicBundle:
		return ClassGuard
	}
	return ClassBackground
}

// Typed shed errors. Callers branch on these with errors.Is; CauseOf
// maps them to the label used on admission.shed counters.
var (
	// ErrQueueFull means the recipient's bounded intake queue had no
	// room and the message could not displace a lower-priority one.
	ErrQueueFull = errors.New("admission: queue full")
	// ErrRateLimited means the recipient's token bucket was empty.
	ErrRateLimited = errors.New("admission: rate limited")
)

// Shed causes, as labeled on admission.shed.
const (
	CauseQueueFull   = "queue_full"
	CauseRateLimited = "rate_limited"
)

// CauseOf returns the canonical cause label for a shed error ("" for
// nil or non-admission errors).
func CauseOf(err error) string {
	switch {
	case errors.Is(err, ErrQueueFull):
		return CauseQueueFull
	case errors.Is(err, ErrRateLimited):
		return CauseRateLimited
	}
	return ""
}

// Config sizes a Controller.
type Config struct {
	// QueueCapacity bounds each recipient's intake queue (default 64).
	QueueCapacity int
	// Rate is the per-recipient token refill rate in tokens per
	// second; 0 disables rate limiting.
	Rate float64
	// Burst is the token bucket capacity (default max(Rate, 1)).
	Burst float64
	// Now supplies the time used for token refill and queue-wait
	// measurement; nil defaults to time.Now. Pass a virtual clock for
	// deterministic admission decisions.
	Now func() time.Time
	// DrainBatch bounds how many messages one Drain call pops
	// (default 32).
	DrainBatch int
	// DrainInterval is the suggested redrain period for schedulers
	// that batch-drain the queues (default 1ms); the controller only
	// stores it.
	DrainInterval time.Duration
	// Metrics, when set, registers the admission telemetry family:
	// admission.admitted{class}, admission.delivered{class},
	// admission.shed{cause,class}, the admission.queue_depth gauge
	// and the admission.wait_ms{class} histogram.
	Metrics *telemetry.Registry
	// OnEvict observes each queued item displaced by a
	// higher-priority arrival, after the controller's lock is
	// released — the owner of the queued payloads uses it to keep its
	// own books exact. May be nil.
	OnEvict func(recipient string, item Item)
}

// Item is one admitted message awaiting drain.
type Item struct {
	// Class is the priority class the item was admitted under.
	Class Class
	// Payload is the caller's message.
	Payload any
	// EnqueuedAt is the admission time (from Config.Now).
	EnqueuedAt time.Time
}

// Counts is a point-in-time accounting snapshot, by class.
type Counts struct {
	// Offered counts every Admit/Allow attempt.
	Offered [numClasses]int64
	// Admitted counts attempts that passed the gate.
	Admitted [numClasses]int64
	// Delivered counts items popped by Drain (Allow reservations are
	// delivered implicitly and counted on admission).
	Delivered [numClasses]int64
	// ShedQueueFull and ShedRateLimited count sheds by cause.
	ShedQueueFull   [numClasses]int64
	ShedRateLimited [numClasses]int64
	// Evicted counts the subset of ShedQueueFull that were already
	// queued when a higher-priority arrival displaced them.
	Evicted [numClasses]int64
}

// Of returns the per-class slot for c (panics on out-of-range
// classes, which cannot be produced by this package).
func classIdx(c Class) int {
	if c < 0 || c >= numClasses {
		panic(fmt.Sprintf("admission: invalid class %d", int(c)))
	}
	return int(c)
}

// Total sums one per-class array.
func Total(a [numClasses]int64) int64 {
	var t int64
	for _, v := range a {
		t += v
	}
	return t
}

// queue is one recipient's intake state.
type queue struct {
	perClass [numClasses][]Item
	depth    int

	tokens     float64
	lastRefill time.Time
	primed     bool

	// draining marks that a scheduler already has a drain pass
	// pending for this recipient (see BeginDrain/FinishDrain).
	draining bool
}

// Controller is the admission front door for a set of recipients.
// All methods are safe for concurrent use; determinism under a
// parallel scheduler comes from callers admitting from ordered
// (serial) contexts and draining each recipient from its own shard.
type Controller struct {
	cfg Config

	mu     sync.Mutex
	queues map[string]*queue
	depth  int // total queued across recipients
	counts Counts

	// cached metric handles, indexed by class (nil without Metrics).
	cAdmitted  [numClasses]*telemetry.Counter
	cDelivered [numClasses]*telemetry.Counter
	cShedFull  [numClasses]*telemetry.Counter
	cShedRate  [numClasses]*telemetry.Counter
	hWait      [numClasses]*telemetry.Histogram
	gDepth     *telemetry.Gauge
}

// New builds a Controller, validating and defaulting the config.
func New(cfg Config) (*Controller, error) {
	if cfg.QueueCapacity < 0 {
		return nil, fmt.Errorf("admission: negative queue capacity %d", cfg.QueueCapacity)
	}
	if cfg.QueueCapacity == 0 {
		cfg.QueueCapacity = 64
	}
	if cfg.Rate < 0 {
		return nil, fmt.Errorf("admission: negative rate %g", cfg.Rate)
	}
	if cfg.Burst <= 0 {
		cfg.Burst = cfg.Rate
		if cfg.Burst < 1 {
			cfg.Burst = 1
		}
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	if cfg.DrainBatch <= 0 {
		cfg.DrainBatch = 32
	}
	if cfg.DrainInterval <= 0 {
		cfg.DrainInterval = time.Millisecond
	}
	c := &Controller{cfg: cfg, queues: make(map[string]*queue)}
	if reg := cfg.Metrics; reg != nil {
		for _, cl := range Classes() {
			i := classIdx(cl)
			c.cAdmitted[i] = reg.Counter("admission.admitted", "class", cl.String())
			c.cDelivered[i] = reg.Counter("admission.delivered", "class", cl.String())
			c.cShedFull[i] = reg.Counter("admission.shed", "cause", CauseQueueFull, "class", cl.String())
			c.cShedRate[i] = reg.Counter("admission.shed", "cause", CauseRateLimited, "class", cl.String())
			c.hWait[i] = reg.Histogram("admission.wait_ms", "class", cl.String())
		}
		c.gDepth = reg.Gauge("admission.queue_depth")
	}
	return c, nil
}

// SetOnEvict installs the eviction observer (see Config.OnEvict).
// Setup-time only — the transport that owns the queued payloads calls
// it once before traffic flows; it is not safe concurrently with
// Admit.
func (c *Controller) SetOnEvict(fn func(recipient string, item Item)) {
	c.cfg.OnEvict = fn
}

// DrainBatch returns the configured per-pass drain bound.
func (c *Controller) DrainBatch() int { return c.cfg.DrainBatch }

// DrainInterval returns the suggested redrain period.
func (c *Controller) DrainInterval() time.Duration { return c.cfg.DrainInterval }

// queueFor returns (creating if needed) the recipient's queue; the
// caller holds c.mu.
func (c *Controller) queueFor(recipient string) *queue {
	q := c.queues[recipient]
	if q == nil {
		q = &queue{}
		c.queues[recipient] = q
	}
	return q
}

// takeToken refills and consumes one token; the caller holds c.mu.
// Rate 0 admits unconditionally.
func (c *Controller) takeToken(q *queue, now time.Time) bool {
	if c.cfg.Rate <= 0 {
		return true
	}
	if !q.primed {
		q.tokens = c.cfg.Burst
		q.lastRefill = now
		q.primed = true
	} else if dt := now.Sub(q.lastRefill); dt > 0 {
		q.tokens += c.cfg.Rate * dt.Seconds()
		if q.tokens > c.cfg.Burst {
			q.tokens = c.cfg.Burst
		}
		q.lastRefill = now
	}
	if q.tokens < 1 {
		return false
	}
	q.tokens--
	return true
}

// Admit classifies one message into the recipient's intake queue. On
// success the message is queued for Drain; on failure the typed shed
// error names the cause and the shed is counted — an Admit is never a
// silent drop. A full queue admits a higher-priority arrival by
// evicting the newest lowest-priority occupant (that eviction is
// itself counted as shed with cause queue_full, under the evicted
// item's class).
func (c *Controller) Admit(recipient string, class Class, payload any) error {
	i := classIdx(class)
	now := c.cfg.Now()
	c.mu.Lock()
	q := c.queueFor(recipient)
	c.counts.Offered[i]++
	if !c.takeToken(q, now) {
		c.counts.ShedRateLimited[i]++
		c.mu.Unlock()
		c.cShedRate[i].Inc()
		return fmt.Errorf("%w: %s intake for %q", ErrRateLimited, class, recipient)
	}
	var evicted Item
	var didEvict bool
	if q.depth >= c.cfg.QueueCapacity {
		evicted, didEvict = c.evictLocked(q, class)
		if !didEvict {
			depth := q.depth
			c.counts.ShedQueueFull[i]++
			c.mu.Unlock()
			c.cShedFull[i].Inc()
			return fmt.Errorf("%w: %s intake for %q (depth %d)", ErrQueueFull, class, recipient, depth)
		}
	}
	q.perClass[i] = append(q.perClass[i], Item{Class: class, Payload: payload, EnqueuedAt: now})
	q.depth++
	c.depth++
	c.counts.Admitted[i]++
	// The depth gauge updates under the lock so its final value is
	// exact (last-writer races would leave it stale).
	c.gDepth.Set(float64(c.depth))
	c.mu.Unlock()
	c.cAdmitted[i].Inc()
	if didEvict {
		c.cShedFull[classIdx(evicted.Class)].Inc()
		if c.cfg.OnEvict != nil {
			c.cfg.OnEvict(recipient, evicted)
		}
	}
	return nil
}

// evictLocked removes the newest occupant of the lowest-priority
// non-empty class, provided that class is strictly lower priority
// than the arrival, and returns it. The eviction is accounted as a
// shed with cause queue_full under the evicted item's class.
func (c *Controller) evictLocked(q *queue, arriving Class) (Item, bool) {
	for i := numClasses - 1; i > classIdx(arriving); i-- {
		n := len(q.perClass[i])
		if n == 0 {
			continue
		}
		it := q.perClass[i][n-1]
		q.perClass[i] = q.perClass[i][:n-1]
		q.depth--
		c.depth--
		c.counts.ShedQueueFull[i]++
		c.counts.Evicted[i]++
		return it, true
	}
	return Item{}, false
}

// Allow is the gate-only form of Admit for callers that deliver
// through their own path (a dispatcher admitting before it enters the
// resilience stack): it consumes a token and checks queue headroom but
// enqueues nothing. An allowed call counts as admitted and delivered
// at once, keeping the conservation counts exact.
func (c *Controller) Allow(recipient string, class Class) error {
	i := classIdx(class)
	now := c.cfg.Now()
	c.mu.Lock()
	defer c.mu.Unlock()
	q := c.queueFor(recipient)
	c.counts.Offered[i]++
	if !c.takeToken(q, now) {
		c.counts.ShedRateLimited[i]++
		c.cShedRate[i].Inc()
		return fmt.Errorf("%w: %s intake for %q", ErrRateLimited, class, recipient)
	}
	if q.depth >= c.cfg.QueueCapacity {
		c.counts.ShedQueueFull[i]++
		c.cShedFull[i].Inc()
		return fmt.Errorf("%w: %s intake for %q (depth %d)", ErrQueueFull, class, recipient, q.depth)
	}
	c.counts.Admitted[i]++
	c.counts.Delivered[i]++
	c.cAdmitted[i].Inc()
	c.cDelivered[i].Inc()
	return nil
}

// Drain pops up to DrainBatch admitted items for the recipient, in
// strict priority order (FIFO within a class), recording each item's
// queue wait. Returns nil when the queue is empty.
func (c *Controller) Drain(recipient string) []Item {
	now := c.cfg.Now()
	c.mu.Lock()
	q := c.queues[recipient]
	if q == nil || q.depth == 0 {
		c.mu.Unlock()
		return nil
	}
	max := c.cfg.DrainBatch
	out := make([]Item, 0, min(max, q.depth))
	for i := 0; i < numClasses && len(out) < max; i++ {
		cls := q.perClass[i][:]
		take := min(max-len(out), len(cls))
		if take == 0 {
			continue
		}
		out = append(out, cls[:take]...)
		rest := cls[take:]
		// Copy down instead of re-slicing so dropped prefixes do not
		// pin the backing array.
		q.perClass[i] = append(q.perClass[i][:0], rest...)
		q.depth -= take
		c.depth -= take
		c.counts.Delivered[i] += int64(take)
		c.cDelivered[i].Add(int64(take))
	}
	c.gDepth.Set(float64(c.depth))
	hw := c.hWait
	c.mu.Unlock()
	for _, it := range out {
		if h := hw[classIdx(it.Class)]; h != nil {
			h.Observe(float64(now.Sub(it.EnqueuedAt).Microseconds()) / 1000)
		}
	}
	return out
}

// BeginDrain marks the recipient as having a drain pass scheduled and
// reports whether this call made the transition (false when a pass is
// already pending). Schedulers use it to keep exactly one drain event
// in flight per recipient.
func (c *Controller) BeginDrain(recipient string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	q := c.queueFor(recipient)
	if q.draining {
		return false
	}
	q.draining = true
	return true
}

// FinishDrain ends one drain pass: when the recipient still has
// queued items it stays marked as draining and FinishDrain returns
// true (the scheduler must run another pass); otherwise the mark is
// cleared and it returns false.
func (c *Controller) FinishDrain(recipient string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	q := c.queues[recipient]
	if q == nil {
		return false
	}
	if q.depth > 0 {
		return true
	}
	q.draining = false
	return false
}

// Depth returns how many items are queued for the recipient.
func (c *Controller) Depth(recipient string) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	if q := c.queues[recipient]; q != nil {
		return q.depth
	}
	return 0
}

// TotalDepth returns the number of queued items across all
// recipients.
func (c *Controller) TotalDepth() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.depth
}

// Counts returns the accounting snapshot.
func (c *Controller) Counts() Counts {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.counts
}

// CheckConservation verifies the controller's books balance exactly:
//
//	offered  == admitted + rejected        (every attempt gated once)
//	admitted == delivered + queued + evicted
//
// where rejected is the shed total minus evictions (an eviction sheds
// an already-admitted item, not an arrival). It returns a descriptive
// error on the first violation.
func (c *Controller) CheckConservation() error {
	c.mu.Lock()
	counts := c.counts
	depth := int64(c.depth)
	c.mu.Unlock()
	offered := Total(counts.Offered)
	admitted := Total(counts.Admitted)
	delivered := Total(counts.Delivered)
	evicted := Total(counts.Evicted)
	shed := Total(counts.ShedQueueFull) + Total(counts.ShedRateLimited)
	rejected := shed - evicted
	if rejected < 0 {
		return fmt.Errorf("admission: evictions %d exceed sheds %d", evicted, shed)
	}
	if offered != admitted+rejected {
		return fmt.Errorf("admission: offered %d != admitted %d + rejected %d", offered, admitted, rejected)
	}
	if admitted != delivered+depth+evicted {
		return fmt.Errorf("admission: admitted %d != delivered %d + queued %d + evicted %d",
			admitted, delivered, depth, evicted)
	}
	return nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
