package chaos

import (
	"errors"
	"math/rand"
	"testing"
	"time"

	"repro/internal/network"
	"repro/internal/sim"
)

func newHarness(t *testing.T) (*Injector, *sim.Engine, *network.Bus, *sim.Metrics) {
	t.Helper()
	clock := sim.NewClock(time.Date(2026, 7, 6, 0, 0, 0, 0, time.UTC))
	engine := sim.NewEngine(clock)
	metrics := sim.NewMetrics()
	bus := network.NewBus(rand.New(rand.NewSource(1)),
		network.WithEngine(engine), network.WithMetrics(metrics))
	return &Injector{Engine: engine, Bus: bus, Metrics: metrics, Rand: rand.New(rand.NewSource(2))},
		engine, bus, metrics
}

func horizonOf(e *sim.Engine, d time.Duration) time.Time {
	return e.Clock().Now().Add(d)
}

func TestLossWindow(t *testing.T) {
	inj, engine, bus, metrics := newHarness(t)
	if err := bus.Attach("a", func(network.Message) {}); err != nil {
		t.Fatalf("Attach: %v", err)
	}
	Loss{Prob: 1, At: 10 * time.Second, For: 10 * time.Second}.Inject(inj)

	var before, during, after error
	engine.Schedule(5*time.Second, func() { before = bus.Send(network.Message{From: "x", To: "a"}) })
	engine.Schedule(15*time.Second, func() { during = bus.Send(network.Message{From: "x", To: "a"}) })
	engine.Schedule(25*time.Second, func() { after = bus.Send(network.Message{From: "x", To: "a"}) })
	if err := engine.Run(horizonOf(engine, time.Minute)); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if before != nil {
		t.Errorf("send before window failed: %v", before)
	}
	if !errors.Is(during, network.ErrDropped) {
		t.Errorf("send during window = %v, want dropped", during)
	}
	if after != nil {
		t.Errorf("send after heal failed: %v", after)
	}
	if metrics.Counter("chaos.loss_injected") != 1 || metrics.Counter("chaos.loss_healed") != 1 {
		t.Errorf("loss metrics = %d/%d", metrics.Counter("chaos.loss_injected"), metrics.Counter("chaos.loss_healed"))
	}
}

func TestPartitionWindow(t *testing.T) {
	inj, engine, bus, _ := newHarness(t)
	for _, id := range []string{"a", "b"} {
		if err := bus.Attach(id, func(network.Message) {}); err != nil {
			t.Fatalf("Attach: %v", err)
		}
	}
	Partition{Groups: map[string]int{"a": 0, "b": 1}, At: 10 * time.Second, For: 10 * time.Second}.Inject(inj)
	var during, after error
	engine.Schedule(15*time.Second, func() { during = bus.Send(network.Message{From: "a", To: "b"}) })
	engine.Schedule(25*time.Second, func() { after = bus.Send(network.Message{From: "a", To: "b"}) })
	if err := engine.Run(horizonOf(engine, time.Minute)); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !errors.Is(during, network.ErrDropped) {
		t.Errorf("cross-partition send = %v, want dropped", during)
	}
	if after != nil {
		t.Errorf("post-heal send failed: %v", after)
	}
}

func TestDuplicationWindow(t *testing.T) {
	inj, engine, bus, metrics := newHarness(t)
	got := 0
	if err := bus.Attach("a", func(network.Message) { got++ }); err != nil {
		t.Fatalf("Attach: %v", err)
	}
	Duplication{Prob: 1, At: 0}.Inject(inj)
	engine.Schedule(time.Second, func() {
		if err := bus.Send(network.Message{From: "x", To: "a"}); err != nil {
			t.Errorf("Send: %v", err)
		}
	})
	if err := engine.Run(horizonOf(engine, time.Minute)); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if got != 2 {
		t.Errorf("deliveries = %d, want 2 (original + duplicate)", got)
	}
	if bus.Duplicated() != 1 || metrics.Counter("bus.duplicated") != 1 {
		t.Errorf("duplicated = %d, metric = %d", bus.Duplicated(), metrics.Counter("bus.duplicated"))
	}
	delivered, dropped := bus.Stats()
	if delivered != 1 || dropped != 0 {
		t.Errorf("stats = %d,%d — duplicates must not distort accounting", delivered, dropped)
	}
}

func TestSlowLinksWindow(t *testing.T) {
	inj, engine, bus, _ := newHarness(t)
	start := engine.Clock().Now()
	var deliveredAt time.Time
	if err := bus.Attach("a", func(network.Message) { deliveredAt = engine.Clock().Now() }); err != nil {
		t.Fatalf("Attach: %v", err)
	}
	SlowLinks{Min: 2 * time.Second, Max: 2 * time.Second, At: 0, For: time.Minute}.Inject(inj)
	engine.Schedule(time.Second, func() {
		if err := bus.Send(network.Message{From: "x", To: "a"}); err != nil {
			t.Errorf("Send: %v", err)
		}
	})
	if err := engine.Run(horizonOf(engine, time.Hour)); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if lat := deliveredAt.Sub(start.Add(time.Second)); lat != 2*time.Second {
		t.Errorf("latency = %v, want 2s", lat)
	}
}

func TestClockSkewJumpsClock(t *testing.T) {
	inj, engine, _, metrics := newHarness(t)
	start := engine.Clock().Now()
	ClockSkew{Jump: 30 * time.Second, Every: 10 * time.Second, Count: 3}.Inject(inj)
	if err := engine.Run(horizonOf(engine, time.Hour)); err != nil {
		t.Fatalf("Run: %v", err)
	}
	// The first tick fires at 10s; each jump pushes the clock past the
	// later ticks' timestamps, so they fire "late" without moving the
	// clock themselves: 10s + 3×30s.
	if got := engine.Clock().Now().Sub(start); got != 100*time.Second {
		t.Errorf("clock advanced %v, want 1m40s", got)
	}
	if metrics.Counter("chaos.skew_injected") != 3 {
		t.Errorf("skew count = %d", metrics.Counter("chaos.skew_injected"))
	}
}

func TestCrashRestart(t *testing.T) {
	inj, engine, _, metrics := newHarness(t)
	var events []string
	CrashRestart{
		DeviceID:     "d1",
		At:           10 * time.Second,
		RestartAfter: 20 * time.Second,
		Crash:        func(id string) { events = append(events, "crash:"+id) },
		Restart:      func(id string) error { events = append(events, "restart:"+id); return nil },
	}.Inject(inj)
	if err := engine.Run(horizonOf(engine, time.Minute)); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(events) != 2 || events[0] != "crash:d1" || events[1] != "restart:d1" {
		t.Errorf("events = %v", events)
	}
	if metrics.Counter("chaos.crash_injected") != 1 || metrics.Counter("chaos.crash_restarted") != 1 {
		t.Errorf("crash metrics = %d/%d",
			metrics.Counter("chaos.crash_injected"), metrics.Counter("chaos.crash_restarted"))
	}
}

func TestScheduleApplyAndNames(t *testing.T) {
	inj, engine, bus, metrics := newHarness(t)
	if err := bus.Attach("a", func(network.Message) {}); err != nil {
		t.Fatalf("Attach: %v", err)
	}
	s := Schedule{Name: "combo", Faults: []Fault{
		Loss{Prob: 1, At: time.Second, For: time.Second},
		Duplication{Prob: 1, At: time.Second, For: time.Second},
		Loss{Prob: 0.5, At: 5 * time.Second, For: time.Second},
	}}
	if got := s.FaultNames(); got != "loss+duplication" {
		t.Errorf("FaultNames = %q", got)
	}
	if got := (Schedule{Name: "baseline"}).FaultNames(); got != "none" {
		t.Errorf("empty FaultNames = %q", got)
	}
	s.Apply(inj)
	if err := engine.Run(horizonOf(engine, time.Minute)); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if metrics.Counter("chaos.loss_injected") != 2 {
		t.Errorf("loss injections = %d, want 2", metrics.Counter("chaos.loss_injected"))
	}
}

func TestLossyLink(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	link := LossyLink(rng, 0.3)
	drops := 0
	const trials = 10000
	for i := 0; i < trials; i++ {
		if !link("a", "b") {
			drops++
		}
	}
	rate := float64(drops) / trials
	if rate < 0.27 || rate > 0.33 {
		t.Errorf("drop rate = %.3f, want ≈0.3", rate)
	}
}
