// Package chaos is a deterministic fault-injection harness for the
// collective: it drives the bus's loss/partition/duplication/latency
// knobs, crashes and restarts devices, and skews the simulation clock,
// all on the discrete-event engine so runs stay reproducible given a
// seed. Experiments use it to show the paper's guard invariants
// (Sections VI–VII) hold while the collective is degraded, not just
// while it is healthy.
//
// Every injected fault and every heal is counted in the metrics
// registry under chaos.<fault>_injected / chaos.<fault>_healed, making
// the fault model observable alongside the bus's own delivery
// accounting.
package chaos

import (
	"math/rand"
	"strings"
	"time"

	"repro/internal/network"
	"repro/internal/sim"
)

// Injector carries the handles faults act on.
type Injector struct {
	// Engine schedules fault onset and healing (required).
	Engine *sim.Engine
	// Bus is the message substrate network faults manipulate; required
	// by Loss, Partition, Duplication and SlowLinks.
	Bus *network.Bus
	// Metrics counts injections and heals; may be nil.
	Metrics *sim.Metrics
	// Rand drives randomized faults; may be nil when no fault needs
	// it.
	Rand *rand.Rand
}

// Count increments a chaos metric. Fault-local names like
// "loss.injected" land in the registry as chaos.loss_injected — one
// dot, per the subsystem.name convention.
func (inj *Injector) Count(name string) {
	if inj.Metrics != nil {
		inj.Metrics.Inc("chaos."+strings.ReplaceAll(name, ".", "_"), 1)
	}
}

// Fault is one injectable failure mode. Inject schedules the fault's
// onset (and healing, for transient faults) on the injector's engine.
type Fault interface {
	// Name labels the fault in metrics and experiment tables.
	Name() string
	// Inject schedules the fault.
	Inject(inj *Injector)
}

// Loss raises the bus loss probability at At and restores lossless
// delivery after For (0 = for the rest of the run).
type Loss struct {
	Prob float64
	At   time.Duration
	For  time.Duration
}

// Name labels the fault.
func (Loss) Name() string { return "loss" }

// Inject schedules the loss window.
func (f Loss) Inject(inj *Injector) {
	inj.Engine.Schedule(f.At, func() {
		inj.Bus.SetLoss(f.Prob)
		inj.Count("loss.injected")
	})
	if f.For > 0 {
		inj.Engine.Schedule(f.At+f.For, func() {
			inj.Bus.SetLoss(0)
			inj.Count("loss.healed")
		})
	}
}

// Partition splits the bus into groups at At and heals after For
// (0 = never heals).
type Partition struct {
	Groups map[string]int
	At     time.Duration
	For    time.Duration
}

// Name labels the fault.
func (Partition) Name() string { return "partition" }

// Inject schedules the partition window.
func (f Partition) Inject(inj *Injector) {
	inj.Engine.Schedule(f.At, func() {
		inj.Bus.Partition(f.Groups)
		inj.Count("partition.injected")
	})
	if f.For > 0 {
		inj.Engine.Schedule(f.At+f.For, func() {
			inj.Bus.Heal()
			inj.Count("partition.healed")
		})
	}
}

// OneWayPartition blocks messages from the From nodes to the To nodes
// — but not the reverse — at At, healing after For (0 = never heals).
// Symmetric partitions hide the push-succeeded/ack-lost case: a
// distribution push can arrive while the acknowledgement dies on the
// return path, leaving the sender convinced the receiver is stale (or,
// with the directions swapped, leaving the receiver stranded while the
// sender believes it converged). Anti-entropy repair exists for exactly
// this asymmetry, so the harness must be able to inject it.
type OneWayPartition struct {
	From, To []string
	At       time.Duration
	For      time.Duration
}

// Name labels the fault.
func (OneWayPartition) Name() string { return "oneway" }

// Inject schedules the one-way block window.
func (f OneWayPartition) Inject(inj *Injector) {
	inj.Engine.Schedule(f.At, func() {
		inj.Bus.PartitionOneWay(f.From, f.To)
		inj.Count("oneway.injected")
	})
	if f.For > 0 {
		inj.Engine.Schedule(f.At+f.For, func() {
			inj.Bus.HealOneWay()
			inj.Count("oneway.healed")
		})
	}
}

// Duplication makes the bus deliver messages twice (with independent
// latency, so duplicates also reorder) between At and At+For.
type Duplication struct {
	Prob float64
	At   time.Duration
	For  time.Duration
}

// Name labels the fault.
func (Duplication) Name() string { return "duplication" }

// Inject schedules the duplication window.
func (f Duplication) Inject(inj *Injector) {
	inj.Engine.Schedule(f.At, func() {
		inj.Bus.SetDuplication(f.Prob)
		inj.Count("duplication.injected")
	})
	if f.For > 0 {
		inj.Engine.Schedule(f.At+f.For, func() {
			inj.Bus.SetDuplication(0)
			inj.Count("duplication.healed")
		})
	}
}

// SlowLinks stretches bus delivery latency to [Min, Max] between At
// and At+For, then restores instant delivery.
type SlowLinks struct {
	Min, Max time.Duration
	At       time.Duration
	For      time.Duration
}

// Name labels the fault.
func (SlowLinks) Name() string { return "slowlinks" }

// Inject schedules the slow window.
func (f SlowLinks) Inject(inj *Injector) {
	inj.Engine.Schedule(f.At, func() {
		inj.Bus.SetLatency(f.Min, f.Max)
		inj.Count("slowlinks.injected")
	})
	if f.For > 0 {
		inj.Engine.Schedule(f.At+f.For, func() {
			inj.Bus.SetLatency(0, 0)
			inj.Count("slowlinks.healed")
		})
	}
}

// ClockSkew jumps the virtual clock forward by Jump every Every,
// Count times — events already queued at earlier timestamps then fire
// "late", the discrete-event analogue of a drifting clock. Guard
// decisions and the audit chain must be insensitive to it.
type ClockSkew struct {
	Jump  time.Duration
	Every time.Duration
	Count int
}

// Name labels the fault.
func (ClockSkew) Name() string { return "skew" }

// Inject schedules the clock jumps.
func (f ClockSkew) Inject(inj *Injector) {
	for i := 1; i <= f.Count; i++ {
		inj.Engine.Schedule(f.Every*time.Duration(i), func() {
			inj.Engine.Clock().Advance(f.Jump)
			inj.Count("skew.injected")
		})
	}
}

// CrashRestart abruptly removes a device at At and restarts it
// RestartAfter later (0 = never restarts). The hooks keep the package
// decoupled from the collective: Crash typically removes the device
// from the collective (detaching it from the bus mid-flight), and
// Restart rebuilds it from its latest audit-journal checkpoint via
// resilience.Recover.
type CrashRestart struct {
	DeviceID     string
	At           time.Duration
	RestartAfter time.Duration
	// Crash kills the device (required).
	Crash func(id string)
	// Restart recovers the device; an error counts as a failed
	// recovery in the metrics.
	Restart func(id string) error
}

// Name labels the fault.
func (CrashRestart) Name() string { return "crash" }

// Inject schedules the crash and the restart.
func (f CrashRestart) Inject(inj *Injector) {
	inj.Engine.Schedule(f.At, func() {
		f.Crash(f.DeviceID)
		inj.Count("crash.injected")
	})
	if f.RestartAfter > 0 && f.Restart != nil {
		inj.Engine.Schedule(f.At+f.RestartAfter, func() {
			if err := f.Restart(f.DeviceID); err != nil {
				inj.Count("crash.restart.failed")
				return
			}
			inj.Count("crash.restarted")
		})
	}
}
