package chaos

import (
	"math/rand"
	"strings"
)

// Schedule is a named set of faults injected together — one
// experimental condition in a chaos run.
type Schedule struct {
	// Name labels the schedule in experiment tables.
	Name string
	// Faults are injected in order when the schedule is applied.
	Faults []Fault
}

// Apply schedules every fault on the injector's engine.
func (s Schedule) Apply(inj *Injector) {
	for _, f := range s.Faults {
		f.Inject(inj)
	}
}

// FaultNames returns the distinct fault names in order of first
// appearance, for reporting.
func (s Schedule) FaultNames() string {
	seen := make(map[string]bool)
	var names []string
	for _, f := range s.Faults {
		if !seen[f.Name()] {
			seen[f.Name()] = true
			names = append(names, f.Name())
		}
	}
	if len(names) == 0 {
		return "none"
	}
	return strings.Join(names, "+")
}

// LossyLink returns a gossip link hook that drops each anti-entropy
// push with probability p — the gossip-level counterpart of the bus
// Loss fault.
func LossyLink(rng *rand.Rand, p float64) func(from, to string) bool {
	return func(from, to string) bool { return rng.Float64() >= p }
}
